#include "analysis/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace tsg {
namespace lint {

namespace {

std::string normalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

// Reads a whole file; returns false on IO error.
bool readFile(const std::string& abs_path, std::string& out) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Parses every NOLINT(...) occurrence in a comment into tsg rule names.
void parseNolint(const std::string& text, std::set<std::string>& rules) {
  std::size_t at = 0;
  while ((at = text.find("NOLINT(", at)) != std::string::npos) {
    const std::size_t open = at + 7;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) {
      break;
    }
    std::string inner = text.substr(open, close - open);
    std::size_t begin = 0;
    while (begin <= inner.size()) {
      std::size_t end = inner.find(',', begin);
      if (end == std::string::npos) {
        end = inner.size();
      }
      std::string item = inner.substr(begin, end - begin);
      const std::size_t first = item.find_first_not_of(" \t");
      const std::size_t last = item.find_last_not_of(" \t");
      if (first != std::string::npos) {
        item = item.substr(first, last - first + 1);
        if (item.rfind("tsg-", 0) == 0) {
          rules.insert(item.substr(4));
        }
      }
      begin = end + 1;
    }
    at = close;
  }
}

// True if `tokens[i]` starts at or after the (line, column) position.
bool tokenAtOrAfter(const Token& t, int line, int column) {
  return t.line > line || (t.line == line && t.column >= column);
}

// A hot marker is a comment that *leads* with tsg:hot (`// tsg:hot` or
// `// tsg:hot — reason`); prose that merely mentions the annotation does
// not mark a region.
bool isHotMarker(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == '/' || text[i] == '*')) {
    ++i;
  }
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) {
    ++i;
  }
  return text.compare(i, 7, "tsg:hot") == 0;
}

}  // namespace

std::string SourceFile::module() const {
  const std::size_t slash = path.find('/');
  if (slash == std::string::npos) {
    return path;
  }
  const std::string top = path.substr(0, slash);
  if (top != "src") {
    return top;
  }
  const std::size_t next = path.find('/', slash + 1);
  if (next == std::string::npos) {
    return top;
  }
  return path.substr(slash + 1, next - slash - 1);
}

bool SourceFile::isHot(std::size_t token_index) const {
  for (const auto& [begin, end] : hot_regions) {
    if (token_index >= begin && token_index < end) {
      return true;
    }
  }
  return false;
}

SourceFile buildSourceFile(std::string path, LexResult lex_result) {
  SourceFile f;
  f.path = normalizeSlashes(std::move(path));
  f.lex = std::move(lex_result);

  for (const Comment& c : f.lex.comments) {
    std::set<std::string> rules;
    parseNolint(c.text, rules);
    if (!rules.empty()) {
      f.suppressions[c.line].insert(rules.begin(), rules.end());
    }
  }

  // `// tsg:hot` marks the next braced block: the first `{` at or after the
  // marker, or — for a trailing marker on a block-opening line — the last
  // `{` earlier on the same line.
  const auto& tokens = f.lex.tokens;
  for (const Comment& c : f.lex.comments) {
    if (!isHotMarker(c.text)) {
      continue;
    }
    std::size_t open = tokens.size();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokenAtOrAfter(tokens[i], c.line, c.column) &&
          tokens[i].kind == TokenKind::kPunct && tokens[i].text == "{") {
        open = i;
        break;
      }
    }
    // Trailing-marker form: `while (...) {  // tsg:hot`.
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].line == c.line && tokens[i].column < c.column &&
          tokens[i].kind == TokenKind::kPunct && tokens[i].text == "{") {
        open = i;  // keep the last one before the marker
      }
      if (tokens[i].line > c.line) {
        break;
      }
    }
    if (open >= tokens.size()) {
      continue;
    }
    int depth = 0;
    std::size_t close = tokens.size();
    for (std::size_t i = open; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kPunct) {
        continue;
      }
      if (tokens[i].text == "{") {
        ++depth;
      } else if (tokens[i].text == "}") {
        if (--depth == 0) {
          close = i;
          break;
        }
      }
    }
    f.hot_regions.emplace_back(open + 1, close);
  }
  return f;
}

Analyzer::Analyzer(AnalyzerOptions options) : options_(std::move(options)) {
  if (options_.layers_path.empty()) {
    options_.layers_path = options_.root + "/tools/layers.txt";
  }
  if (options_.lock_order_path.empty()) {
    options_.lock_order_path = options_.root + "/tools/lock_order.txt";
  }
}

std::vector<std::string> Analyzer::collectFiles(
    const std::vector<std::string>& paths) const {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& rel : paths) {
    const fs::path abs = fs::path(options_.root) / rel;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_directory() &&
            (it->path().filename() == "lint_fixtures" ||
             it->path().filename().string().rfind('.', 0) == 0)) {
          it.disable_recursion_pending();
          continue;
        }
        if (!it->is_regular_file()) {
          continue;
        }
        const std::string ext = it->path().extension().string();
        if (ext != ".cc" && ext != ".h") {
          continue;
        }
        files.push_back(normalizeSlashes(
            fs::relative(it->path(), options_.root).string()));
      }
    } else {
      files.push_back(normalizeSlashes(rel));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Diagnostic> Analyzer::run(
    const std::vector<std::string>& files) const {
  std::vector<Diagnostic> out;
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& rel : files) {
    std::string text;
    if (!readFile(options_.root + "/" + rel, text)) {
      out.push_back(Diagnostic{rel, 0, "io", "cannot read file"});
      continue;
    }
    sources.push_back(buildSourceFile(rel, lex(text)));
  }

  for (const SourceFile& f : sources) {
    checkTraceLiteral(f, out);
    checkNakedThread(f, out);
    checkUnseededRng(f, out);
    checkMetricName(f, out);
    checkHotPath(f, out);
    checkAtomics(f, out);
  }

  std::string layers_text;
  if (readFile(options_.layers_path, layers_text)) {
    checkLayering(sources, layers_text, out);
  } else {
    out.push_back(Diagnostic{normalizeSlashes(options_.layers_path), 0,
                             "layering", "cannot read layer declaration"});
  }
  std::string seed_text;
  if (readFile(options_.lock_order_path, seed_text)) {
    checkLockOrder(sources, seed_text, out);
  } else {
    out.push_back(Diagnostic{normalizeSlashes(options_.lock_order_path), 0,
                             "lock-order", "cannot read lock-order seeds"});
  }

  // Apply NOLINT suppressions (graph-level rules are not waivable: a
  // layering back-edge or a lock cycle gets fixed, not annotated away).
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : sources) {
    by_path[f.path] = &f;
  }
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : out) {
    if (d.rule != "layering" && d.rule != "lock-order") {
      const auto fit = by_path.find(d.file);
      if (fit != by_path.end()) {
        const auto sit = fit->second->suppressions.find(d.line);
        if (sit != fit->second->suppressions.end() &&
            sit->second.count(d.rule) != 0) {
          continue;
        }
      }
    }
    kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return kept;
}

}  // namespace lint
}  // namespace tsg
