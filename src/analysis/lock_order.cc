// tsg-lock-order: builds per-function mutex-acquire sequences, propagates
// them over an approximate intra-repo call graph, merges the known-good
// seed order from tools/lock_order.txt, and flags any cycle in the global
// lock graph. Not suppressible — a cycle is a deadlock waiting for the
// right interleaving, so it gets fixed, never waived.
//
// Lock names are `<Class>.<member>` (enclosing class from the definition's
// qualifier or the surrounding class body; the file's module when free).
// Blocking acquisitions (lock_guard, scoped_lock, unique_lock without
// defer/try tags, raw .lock()) create edges held-lock -> new-lock; a
// try_to_lock acquisition never blocks, so it is a valid edge *source*
// (you hold it while blocking elsewhere) but never an edge target.
//
// Seed grammar (tools/lock_order.txt, '#' comments):
//   <LockA> < <LockB>     A may be held while acquiring B
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"

namespace tsg {
namespace lint {

namespace {

bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool isIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool isKeywordName(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",   "for",     "switch",        "catch",
      "return",   "sizeof",  "alignof", "decltype",      "noexcept",
      "operator", "static_assert",      "alignas",       "typeid",
      "co_await", "co_return", "co_yield"};
  return kKeywords.count(s) != 0;
}

std::size_t matchParen(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (isPunct(tokens[i], "(")) {
      ++depth;
    } else if (isPunct(tokens[i], ")")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return tokens.size();
}

struct Site {
  std::string file;
  int line = 0;
};

struct Edge {
  std::string from;
  std::string to;
  Site site;
};

struct CallSite {
  std::string callee;       // simple name
  bool member_call = false;  // obj.callee(...) / obj->callee(...)
  int line = 0;
  std::vector<std::string> held;
};

struct FunctionInfo {
  std::string simple;
  std::string klass;   // enclosing class or "" for free functions
  std::string module;  // the file's module, used as class fallback
  std::string file;
  std::set<std::string> acquires;  // locks this body may block-acquire
  std::vector<Edge> edges;         // direct nesting edges
  std::vector<CallSite> calls;
};

// Last depth-0 identifier of an argument token run: the lock member in
// `buckets_[i].mutex`, the array in `deques_[v]`.
std::string lastTopLevelIdent(const std::vector<Token>& tokens,
                              std::size_t begin, std::size_t end) {
  int bracket = 0;
  int paren = 0;
  std::string last;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "[") {
        ++bracket;
      } else if (t.text == "]") {
        --bracket;
      } else if (t.text == "(") {
        ++paren;
      } else if (t.text == ")") {
        --paren;
      }
      continue;
    }
    if (bracket == 0 && paren == 0 && t.kind == TokenKind::kIdentifier) {
      last = t.text;
    }
  }
  return last;
}

// Splits the argument list of the paren group [open, close] at top-level
// commas into [begin, end) token ranges.
std::vector<std::pair<std::size_t, std::size_t>> splitArgs(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open; i <= close && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kPunct) {
      continue;
    }
    if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == "}" ||
               t.text == ">") {
      --depth;
      if (depth == 0 && t.text == ")" && i == close) {
        if (i > begin) {
          args.emplace_back(begin, i);
        }
        break;
      }
    } else if (t.text == "," && depth == 1) {
      args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  return args;
}

bool rangeHasIdent(const std::vector<Token>& tokens, std::size_t begin,
                   std::size_t end, std::string_view name) {
  for (std::size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == name) {
      return true;
    }
  }
  return false;
}

// --------------------------------------------------------------- parser ---

class FileParser {
 public:
  FileParser(const SourceFile& f, std::vector<FunctionInfo>& sink)
      : f_(f), tokens_(f.lex.tokens), sink_(sink) {}

  void run() {
    int depth = 0;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (isPunct(t, "{")) {
        ++depth;
        continue;
      }
      if (isPunct(t, "}")) {
        --depth;
        while (!classes_.empty() && classes_.back().second >= depth) {
          classes_.pop_back();
        }
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          !(i > 0 && isIdent(tokens_[i - 1], "enum"))) {
        trackClass(i, depth);
        continue;
      }
      std::size_t body = findFunctionBody(i);
      if (body != 0) {
        parseFunction(i, body, depth);
        // Skip to the body's closing brace; nested definitions (lambdas)
        // belong to this function's analysis.
        i = skipBraces(body) - 1;
      }
    }
  }

 private:
  // `class X ... {` (not a forward declaration). Records (X, body depth).
  void trackClass(std::size_t kw, int depth) {
    std::size_t i = kw + 1;
    std::string name;
    if (i < tokens_.size() && tokens_[i].kind == TokenKind::kIdentifier) {
      name = tokens_[i].text;
    }
    for (; i < tokens_.size(); ++i) {
      if (isPunct(tokens_[i], ";") || isPunct(tokens_[i], "(")) {
        return;  // forward declaration / something else
      }
      if (isPunct(tokens_[i], "{")) {
        if (!name.empty()) {
          classes_.emplace_back(name, depth + 1);
        }
        return;
      }
    }
  }

  // If token i names a function definition `name(...) [quals] [: init] {`,
  // returns the index of the body's `{`; 0 otherwise.
  std::size_t findFunctionBody(std::size_t i) {
    if (i + 1 >= tokens_.size() || !isPunct(tokens_[i + 1], "(") ||
        isKeywordName(tokens_[i].text)) {
      return 0;
    }
    // Calls are not definitions: a member access / plain call in statement
    // position still gets rejected below because the `)` is followed by
    // `;`, an operator, etc., not `{`.
    const std::size_t close = matchParen(tokens_, i + 1);
    if (close >= tokens_.size()) {
      return 0;
    }
    std::size_t j = close + 1;
    // Trailing qualifiers.
    while (j < tokens_.size() && tokens_[j].kind == TokenKind::kIdentifier &&
           (tokens_[j].text == "const" || tokens_[j].text == "noexcept" ||
            tokens_[j].text == "override" || tokens_[j].text == "final" ||
            tokens_[j].text == "mutable")) {
      ++j;
      if (j < tokens_.size() && isPunct(tokens_[j], "(")) {
        j = matchParen(tokens_, j) + 1;  // noexcept(...)
      }
    }
    // Trailing return type: `-> Type` up to `{` or `;`.
    if (j < tokens_.size() && isPunct(tokens_[j], "->")) {
      while (j < tokens_.size() && !isPunct(tokens_[j], "{") &&
             !isPunct(tokens_[j], ";")) {
        ++j;
      }
    }
    // Constructor init list: `: name(...)[, name{...}]... {`.
    if (j < tokens_.size() && isPunct(tokens_[j], ":")) {
      ++j;
      while (j < tokens_.size()) {
        while (j < tokens_.size() &&
               (tokens_[j].kind == TokenKind::kIdentifier ||
                isPunct(tokens_[j], "::") || isPunct(tokens_[j], "<") ||
                isPunct(tokens_[j], ">") || isPunct(tokens_[j], ","))) {
          if (isPunct(tokens_[j], ",")) {
            ++j;
            break;
          }
          ++j;
        }
        if (j >= tokens_.size() || isPunct(tokens_[j], "{")) {
          // A `{` here is an init like `b_{y}`; the body brace follows the
          // last initializer. Distinguish: member init braces are followed
          // by `,` or `{`.
          if (j < tokens_.size()) {
            const std::size_t after = skipBraces(j);
            if (after < tokens_.size() && (isPunct(tokens_[after], ",") ||
                                           isPunct(tokens_[after], "{"))) {
              j = after;
              if (isPunct(tokens_[j], ",")) {
                ++j;
              }
              continue;
            }
          }
          break;
        }
        if (isPunct(tokens_[j], "(")) {
          j = matchParen(tokens_, j) + 1;
          if (j < tokens_.size() && isPunct(tokens_[j], ",")) {
            ++j;
            continue;
          }
          continue;
        }
        ++j;
      }
    }
    if (j < tokens_.size() && isPunct(tokens_[j], "{")) {
      return j;
    }
    return 0;
  }

  // Index just past the matching `}` of the `{` at `open`.
  std::size_t skipBraces(std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < tokens_.size(); ++i) {
      if (isPunct(tokens_[i], "{")) {
        ++depth;
      } else if (isPunct(tokens_[i], "}")) {
        if (--depth == 0) {
          return i + 1;
        }
      }
    }
    return tokens_.size();
  }

  std::string enclosingClass() const {
    return classes_.empty() ? std::string() : classes_.back().first;
  }

  std::string lockName(const std::string& member,
                       const std::string& klass) const {
    const std::string owner = klass.empty() ? f_.module() : klass;
    return owner + "." + member;
  }

  struct Held {
    std::string lock;
    int depth = 0;
    bool try_acquired = false;
  };

  void parseFunction(std::size_t name_at, std::size_t body, int depth) {
    FunctionInfo fn;
    fn.simple = tokens_[name_at].text;
    fn.module = f_.module();
    fn.file = f_.path;
    // `Class::name` qualifier wins over the surrounding class body.
    if (name_at >= 2 && isPunct(tokens_[name_at - 1], "::") &&
        tokens_[name_at - 2].kind == TokenKind::kIdentifier) {
      fn.klass = tokens_[name_at - 2].text;
    } else {
      fn.klass = enclosingClass();
    }

    const std::size_t end = skipBraces(body);
    std::vector<Held> held;
    std::map<std::string, std::string> lock_vars;  // unique_lock var -> lock
    int fdepth = depth;

    const auto acquire = [&](const std::string& lock, int at_depth, int line,
                             bool try_acquired) {
      if (!try_acquired) {
        for (const Held& h : held) {
          if (h.lock != lock) {
            fn.edges.push_back(Edge{h.lock, lock, Site{f_.path, line}});
          }
        }
        // Only blocking acquisitions propagate as edge *targets*; a
        // try-acquire never blocks, so it cannot close a deadlock cycle.
        fn.acquires.insert(lock);
      }
      held.push_back(Held{lock, at_depth, try_acquired});
    };
    const auto release = [&](const std::string& lock) {
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->lock == lock) {
          held.erase(std::next(it).base());
          return;
        }
      }
    };

    for (std::size_t i = body; i < end; ++i) {
      const Token& t = tokens_[i];
      if (isPunct(t, "{")) {
        ++fdepth;
        continue;
      }
      if (isPunct(t, "}")) {
        --fdepth;
        for (std::size_t h = held.size(); h > 0; --h) {
          if (held[h - 1].depth > fdepth) {
            held.erase(held.begin() + static_cast<std::ptrdiff_t>(h - 1));
          }
        }
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }

      // RAII guard constructions.
      if (t.text == "lock_guard" || t.text == "scoped_lock" ||
          t.text == "unique_lock" || t.text == "shared_lock") {
        std::size_t j = i + 1;
        if (j < end && isPunct(tokens_[j], "<")) {
          int angle = 0;
          for (; j < end; ++j) {
            if (isPunct(tokens_[j], "<")) {
              ++angle;
            } else if (isPunct(tokens_[j], ">") && --angle == 0) {
              ++j;
              break;
            }
          }
        }
        std::string var;
        if (j < end && tokens_[j].kind == TokenKind::kIdentifier) {
          var = tokens_[j].text;
          ++j;
        }
        if (j >= end || !isPunct(tokens_[j], "(")) {
          continue;
        }
        const std::size_t close = matchParen(tokens_, j);
        const auto args = splitArgs(tokens_, j, close);
        bool defer = false;
        bool try_to = false;
        std::vector<std::string> mutexes;
        for (const auto& [ab, ae] : args) {
          if (rangeHasIdent(tokens_, ab, ae, "defer_lock")) {
            defer = true;
          } else if (rangeHasIdent(tokens_, ab, ae, "try_to_lock")) {
            try_to = true;
          } else if (rangeHasIdent(tokens_, ab, ae, "adopt_lock")) {
            // already held via .lock(); tracked there
          } else {
            const std::string member = lastTopLevelIdent(tokens_, ab, ae);
            if (!member.empty()) {
              mutexes.push_back(lockName(member, fn.klass));
            }
          }
        }
        for (const std::string& m : mutexes) {
          if (!var.empty() &&
              (t.text == "unique_lock" || t.text == "shared_lock")) {
            lock_vars[var] = m;
          }
          if (!defer) {
            acquire(m, fdepth, t.line, try_to);
          }
        }
        i = close;
        continue;
      }

      // `x.lock()` / `x.unlock()` — on a guard variable or a raw mutex.
      if ((t.text == "lock" || t.text == "unlock" || t.text == "try_lock") &&
          i >= 2 && i + 1 < end && isPunct(tokens_[i + 1], "(") &&
          (isPunct(tokens_[i - 1], ".") || isPunct(tokens_[i - 1], "->")) &&
          tokens_[i - 2].kind == TokenKind::kIdentifier) {
        const std::string obj = tokens_[i - 2].text;
        const auto vit = lock_vars.find(obj);
        const std::string lock =
            vit != lock_vars.end() ? vit->second : lockName(obj, fn.klass);
        if (t.text == "lock") {
          acquire(lock, fdepth, t.line, false);
        } else if (t.text == "try_lock") {
          acquire(lock, fdepth, t.line, true);
        } else {
          release(lock);
        }
        i = matchParen(tokens_, i + 1);
        continue;
      }

      // Call sites (for may-acquire propagation).
      if (i + 1 < end && isPunct(tokens_[i + 1], "(") &&
          !isKeywordName(t.text) && t.text != fn.simple) {
        CallSite cs;
        cs.callee = t.text;
        cs.member_call =
            i > 0 && (isPunct(tokens_[i - 1], ".") ||
                      isPunct(tokens_[i - 1], "->"));
        cs.line = t.line;
        for (const Held& h : held) {
          cs.held.push_back(h.lock);
        }
        fn.calls.push_back(std::move(cs));
      }
    }
    sink_.push_back(std::move(fn));
  }

 private:
  const SourceFile& f_;
  const std::vector<Token>& tokens_;
  std::vector<FunctionInfo>& sink_;
  std::vector<std::pair<std::string, int>> classes_;  // (name, body depth)
};

}  // namespace

void checkLockOrder(const std::vector<SourceFile>& files,
                    const std::string& seed_text,
                    std::vector<Diagnostic>& out) {
  // --- collect per-function facts ---
  std::vector<FunctionInfo> fns;
  for (const SourceFile& f : files) {
    FileParser parser(f, fns);
    parser.run();
  }

  // --- name index for approximate call resolution ---
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (!fns[i].acquires.empty() || !fns[i].calls.empty()) {
      by_name[fns[i].simple].push_back(i);
    }
  }
  // Names that collide with the standard library: resolving `x.size()` to
  // StealDeque::size would hang a lock edge off every container call made
  // under a mutex, so these never resolve across classes.
  static const std::set<std::string> kStlLikeNames = {
      "size",     "empty",    "clear",   "reserve",  "resize",
      "push_back", "emplace_back", "pop_back", "insert", "erase",
      "find",     "count",    "at",      "begin",    "end",
      "front",    "back",     "data",    "swap",     "reset",
      "get",      "str",      "load",    "store",    "wait",
      "push",     "pop",      "merge",   "append",   "take"};
  const auto resolve = [&](const FunctionInfo& from,
                           const CallSite& cs) -> std::vector<std::size_t> {
    const auto it = by_name.find(cs.callee);
    if (it == by_name.end()) {
      return {};
    }
    // An unqualified, non-member call inside a class body is almost always
    // `this->`: prefer same-class candidates.
    if (!cs.member_call) {
      std::vector<std::size_t> same_class;
      for (const std::size_t idx : it->second) {
        if (fns[idx].klass == from.klass && fns[idx].module == from.module) {
          same_class.push_back(idx);
        }
      }
      if (!same_class.empty()) {
        return same_class;
      }
    }
    if (kStlLikeNames.count(cs.callee) != 0) {
      return {};
    }
    // Cross-class resolution only when every candidate agrees on the class
    // (the name is effectively unique in the repo); anything else is too
    // ambiguous to hang a deadlock edge on.
    const std::string& klass = fns[it->second.front()].klass;
    for (const std::size_t idx : it->second) {
      if (fns[idx].klass != klass) {
        return {};
      }
    }
    return it->second;
  };

  // --- may-acquire fixpoint over the call graph ---
  std::vector<std::set<std::string>> may(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    may[i] = fns[i].acquires;
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (std::size_t i = 0; i < fns.size(); ++i) {
      for (const CallSite& cs : fns[i].calls) {
        for (const std::size_t callee : resolve(fns[i], cs)) {
          for (const std::string& lock : may[callee]) {
            if (may[i].insert(lock).second) {
              changed = true;
            }
          }
        }
      }
    }
  }

  // --- global edge set: direct nesting + propagated + seed ---
  std::map<std::pair<std::string, std::string>, Site> edges;
  const auto add_edge = [&edges](const std::string& a, const std::string& b,
                                 const Site& site) {
    if (a != b) {
      edges.emplace(std::make_pair(a, b), site);
    }
  };
  for (std::size_t i = 0; i < fns.size(); ++i) {
    for (const Edge& e : fns[i].edges) {
      add_edge(e.from, e.to, e.site);
    }
    for (const CallSite& cs : fns[i].calls) {
      if (cs.held.empty()) {
        continue;
      }
      for (const std::size_t callee : resolve(fns[i], cs)) {
        for (const std::string& lock : may[callee]) {
          for (const std::string& h : cs.held) {
            add_edge(h, lock, Site{fns[i].file, cs.line});
          }
        }
      }
    }
  }

  // Debugging aid: TSGLINT_DEBUG_EDGES=1 dumps the discovered lock graph
  // with the site that produced each edge.
  if (std::getenv("TSGLINT_DEBUG_EDGES") != nullptr) {
    for (const auto& [edge, site] : edges) {
      std::fprintf(stderr, "edge %s -> %s  (%s:%d)\n", edge.first.c_str(),
                   edge.second.c_str(), site.file.c_str(), site.line);
    }
  }

  // Seed edges (the declared known-good order).
  {
    std::istringstream in(seed_text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::istringstream parts(line);
      std::string a;
      std::string lt;
      std::string b;
      if (parts >> a >> lt >> b && lt == "<") {
        add_edge(a, b, Site{"tools/lock_order.txt", lineno});
      }
    }
  }

  // --- cycle detection ---
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, site] : edges) {
    (void)site;
    adj[edge.first].push_back(edge.second);
  }
  std::set<std::string> reported;
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adj[node]) {
          if (color[next] == 1) {
            // Build the cycle path next -> ... -> node -> next.
            std::vector<std::string> cycle;
            bool in = false;
            for (const std::string& s : stack) {
              if (s == next) {
                in = true;
              }
              if (in) {
                cycle.push_back(s);
              }
            }
            cycle.push_back(next);
            // Canonical key: rotate so the smallest lock leads.
            std::string key;
            for (const std::string& c :
                 std::set<std::string>(cycle.begin(), cycle.end())) {
              key += c + "|";
            }
            if (reported.insert(key).second) {
              std::string path;
              for (std::size_t k = 0; k + 1 < cycle.size(); ++k) {
                path += cycle[k] + " -> ";
              }
              path += cycle.back();
              const auto site_it =
                  edges.find(std::make_pair(node, next));
              const Site site = site_it != edges.end()
                                    ? site_it->second
                                    : Site{"tools/lock_order.txt", 0};
              out.push_back(Diagnostic{
                  site.file, site.line, "lock-order",
                  "lock-order cycle: " + path +
                      " (this edge closes the cycle; fix the acquisition "
                      "order or split the critical section)"});
            }
          } else if (color[next] == 0) {
            visit(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, nexts] : adj) {
    (void)nexts;
    if (color[node] == 0) {
      visit(node);
    }
  }
}

}  // namespace lint
}  // namespace tsg
