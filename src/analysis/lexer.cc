#include "analysis/lexer.h"

#include <cctype>

namespace tsg {
namespace lint {

namespace {

// Cursor over the raw source that performs phase-2 line splicing
// (backslash-newline deletion) transparently while keeping physical
// line/column positions truthful. Raw-string bodies opt out via rawGet()
// — the standard un-splices them.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool atEnd() const { return skipSplices(pos_) >= src_.size(); }

  // Current character after splice skipping (0 at end).
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    std::size_t p = skipSplices(pos_);
    while (ahead > 0 && p < src_.size()) {
      p = skipSplices(p + 1);
      --ahead;
    }
    return p < src_.size() ? src_[p] : '\0';
  }

  char get() {
    pos_ = skipSplices(pos_);
    if (pos_ >= src_.size()) {
      return '\0';
    }
    const char c = src_[pos_++];
    advancePosition(c);
    return c;
  }

  // Raw-string mode: no splice processing at all.
  [[nodiscard]] bool rawAtEnd() const { return pos_ >= src_.size(); }
  [[nodiscard]] char rawPeek() const {
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }
  char rawGet() {
    if (pos_ >= src_.size()) {
      return '\0';
    }
    const char c = src_[pos_++];
    advancePosition(c);
    return c;
  }

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  // Returns the first position at or after `p` that is not inside a
  // backslash-newline splice. Updates no state (const): get() re-walks and
  // accounts line numbers as it consumes.
  [[nodiscard]] std::size_t skipSplices(std::size_t p) const {
    while (p + 1 < src_.size() && src_[p] == '\\') {
      if (src_[p + 1] == '\n') {
        p += 2;
      } else if (src_[p + 1] == '\r' && p + 2 < src_.size() &&
                 src_[p + 2] == '\n') {
        p += 3;
      } else {
        break;
      }
    }
    return p;
  }

  void advancePosition(char c) {
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    // Account for any splice the *next* read will silently hop over, so
    // line numbers stay physical. The skip itself happens in get().
    std::size_t p = pos_;
    while (p + 1 < src_.size() && src_[p] == '\\' &&
           (src_[p + 1] == '\n' ||
            (src_[p + 1] == '\r' && p + 2 < src_.size() &&
             src_[p + 2] == '\n'))) {
      p += src_[p + 1] == '\n' ? 2 : 3;
      ++line_;
      column_ = 1;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$';
}

bool isIdentCont(char c) {
  return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Is this identifier a string/char literal prefix (L, u, U, u8, R and the
// raw combinations uR, u8R, LR, UR)?
bool isLiteralPrefix(std::string_view id) {
  return id == "L" || id == "u" || id == "U" || id == "u8" || id == "R" ||
         id == "uR" || id == "u8R" || id == "LR" || id == "UR";
}

}  // namespace

LexResult lex(std::string_view source) {
  LexResult result;
  Cursor cur(source);

  const auto push = [&result](TokenKind kind, std::string text, int line,
                              int column) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    result.tokens.push_back(std::move(t));
  };

  // Consumes a quoted literal (quote already identified, not yet consumed);
  // returns its text including quotes. Escapes are skipped, contents kept.
  const auto lexQuoted = [&cur](char quote) {
    std::string text;
    text.push_back(cur.get());  // opening quote
    while (!cur.atEnd()) {
      const char c = cur.get();
      text.push_back(c);
      if (c == '\\') {
        if (!cur.atEnd()) {
          text.push_back(cur.get());  // escaped char, incl. quote/backslash
        }
        continue;
      }
      if (c == quote || c == '\n') {  // newline: unterminated, stop at EOL
        break;
      }
    }
    return text;
  };

  // Consumes a raw string starting at R" (R consumed by caller as part of
  // the prefix, the cursor sits on '"'). No splices, no escapes.
  const auto lexRawString = [&cur]() {
    std::string text;
    text.push_back(cur.rawGet());  // opening quote
    std::string delim;
    while (!cur.rawAtEnd() && cur.rawPeek() != '(') {
      delim.push_back(cur.rawGet());
      text.push_back(delim.back());
    }
    if (!cur.rawAtEnd()) {
      text.push_back(cur.rawGet());  // '('
    }
    const std::string closer = ")" + delim + "\"";
    std::string tail;
    while (!cur.rawAtEnd()) {
      const char c = cur.rawGet();
      text.push_back(c);
      tail.push_back(c);
      if (tail.size() > closer.size()) {
        tail.erase(tail.begin());
      }
      if (tail == closer) {
        break;
      }
    }
    return text;
  };

  while (!cur.atEnd()) {
    const char c = cur.peek();
    const int line = cur.line();
    const int column = cur.column();

    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      cur.get();
      continue;
    }

    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      std::string text;
      // A line comment extends across splices (the cursor handles that).
      while (!cur.atEnd() && cur.peek() != '\n') {
        text.push_back(cur.get());
      }
      result.comments.push_back(Comment{std::move(text), line, column});
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      std::string text;
      text.push_back(cur.get());
      text.push_back(cur.get());
      // C++ block comments do not nest: the first */ ends it, even after
      // an inner /*.
      while (!cur.atEnd()) {
        const char d = cur.get();
        text.push_back(d);
        if (d == '*' && cur.peek() == '/') {
          text.push_back(cur.get());
          break;
        }
      }
      result.comments.push_back(Comment{std::move(text), line, column});
      continue;
    }

    // String and char literals (no prefix).
    if (c == '"') {
      push(TokenKind::kString, lexQuoted('"'), line, column);
      continue;
    }
    if (c == '\'') {
      push(TokenKind::kChar, lexQuoted('\''), line, column);
      continue;
    }

    // Identifiers, keywords, and literal prefixes.
    if (isIdentStart(c)) {
      std::string text;
      while (!cur.atEnd() && isIdentCont(cur.peek())) {
        text.push_back(cur.get());
      }
      // u8"...", L'x', R"(...)", uR"(...)" etc. lex as one string token.
      if (!cur.atEnd() && isLiteralPrefix(text)) {
        if (cur.peek() == '"') {
          const bool raw = text.back() == 'R';
          std::string lit =
              raw ? lexRawString() : lexQuoted('"');
          push(TokenKind::kString, text + lit, line, column);
          continue;
        }
        if (cur.peek() == '\'' && text.back() != 'R') {
          push(TokenKind::kChar, text + lexQuoted('\''), line, column);
          continue;
        }
      }
      push(TokenKind::kIdentifier, std::move(text), line, column);
      continue;
    }

    // Numbers (pp-number: digits, idents, ', and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))) !=
                         0)) {
      std::string text;
      text.push_back(cur.get());
      while (!cur.atEnd()) {
        const char d = cur.peek();
        if (isIdentCont(d) || d == '\'' || d == '.') {
          text.push_back(cur.get());
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty() &&
            (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
             text.back() == 'P')) {
          text.push_back(cur.get());
          continue;
        }
        break;
      }
      push(TokenKind::kNumber, std::move(text), line, column);
      continue;
    }

    // Punctuation: fuse `::` and `->`, everything else single-char.
    if (c == ':' && cur.peek(1) == ':') {
      cur.get();
      cur.get();
      push(TokenKind::kPunct, "::", line, column);
      continue;
    }
    if (c == '-' && cur.peek(1) == '>') {
      cur.get();
      cur.get();
      push(TokenKind::kPunct, "->", line, column);
      continue;
    }
    push(TokenKind::kPunct, std::string(1, cur.get()), line, column);
  }
  return result;
}

}  // namespace lint
}  // namespace tsg
