// tsg-layering: the module DAG declared in tools/layers.txt is enforced
// against the actual #include graph, and the declaration itself must be
// acyclic. Not suppressible — a back-edge means the dependency gets
// inverted (see common/prof_hooks.h for the pattern), not waived.
//
// Declaration grammar (one module per line, '#' comments):
//   <module>: <dep> <dep> ...     may include only itself and <dep>s
//   <module>: *                   may include anything (tools/tests/bench)
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace tsg {
namespace lint {

namespace {

struct LayerDecl {
  std::set<std::string> deps;
  bool any = false;  // declared as '*'
};

std::map<std::string, LayerDecl> parseLayers(const std::string& text) {
  std::map<std::string, LayerDecl> layers;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string name = line.substr(0, colon);
    name.erase(std::remove_if(name.begin(), name.end(),
                              [](char c) { return c == ' ' || c == '\t'; }),
               name.end());
    if (name.empty()) {
      continue;
    }
    LayerDecl& decl = layers[name];
    std::istringstream deps(line.substr(colon + 1));
    std::string dep;
    while (deps >> dep) {
      if (dep == "*") {
        decl.any = true;
      } else {
        decl.deps.insert(dep);
      }
    }
  }
  return layers;
}

// First path segment of a quoted include target ("" when it has none, i.e.
// a same-directory include).
std::string includeModule(std::string_view target) {
  const std::size_t slash = target.find('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(target.substr(0, slash));
}

// Reports any cycle in the declared graph itself (colored DFS).
void checkDeclaredAcyclic(const std::map<std::string, LayerDecl>& layers,
                          std::vector<Diagnostic>& out) {
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  // Recursive lambda via explicit stack-free Y-combinator style.
  const std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    const auto it = layers.find(node);
    if (it != layers.end()) {
      for (const std::string& dep : it->second.deps) {
        if (layers.count(dep) == 0) {
          continue;
        }
        if (color[dep] == 1) {
          std::string cycle = dep;
          for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
            cycle += " -> " + *rit;
            if (*rit == dep) {
              break;
            }
          }
          out.push_back(Diagnostic{
              "tools/layers.txt", 0, "layering",
              "declared module graph has a cycle: " + cycle});
          return false;
        }
        if (color[dep] == 0 && !visit(dep)) {
          return false;
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
    return true;
  };
  for (const auto& [name, decl] : layers) {
    (void)decl;
    if (color[name] == 0 && !visit(name)) {
      return;  // one cycle report is enough; fixing it re-runs the check
    }
  }
}

}  // namespace

void checkLayering(const std::vector<SourceFile>& files,
                   const std::string& layers_text,
                   std::vector<Diagnostic>& out) {
  const std::map<std::string, LayerDecl> layers = parseLayers(layers_text);
  if (layers.empty()) {
    out.push_back(Diagnostic{"tools/layers.txt", 0, "layering",
                             "no module declarations found"});
    return;
  }
  checkDeclaredAcyclic(layers, out);

  for (const SourceFile& f : files) {
    const std::string mod = f.module();
    const auto decl_it = layers.find(mod);
    if (decl_it == layers.end()) {
      out.push_back(Diagnostic{
          f.path, 1, "layering",
          "module '" + mod + "' is not declared in tools/layers.txt"});
      continue;
    }
    const LayerDecl& decl = decl_it->second;
    if (decl.any) {
      continue;
    }

    const auto& tokens = f.lex.tokens;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (!(tokens[i].kind == TokenKind::kPunct && tokens[i].text == "#" &&
            tokens[i + 1].kind == TokenKind::kIdentifier &&
            tokens[i + 1].text == "include" &&
            tokens[i + 2].kind == TokenKind::kString)) {
        continue;
      }
      std::string_view target = tokens[i + 2].text;
      if (target.size() >= 2) {
        target = target.substr(1, target.size() - 2);  // strip quotes
      }
      const std::string dep = includeModule(target);
      if (dep.empty() || dep == mod) {
        continue;  // same-directory or same-module include
      }
      if (layers.count(dep) == 0) {
        continue;  // not one of ours (third-party quoted include)
      }
      if (decl.deps.count(dep) == 0) {
        out.push_back(Diagnostic{
            f.path, tokens[i].line, "layering",
            "module '" + mod + "' must not include '" + dep +
                "' (not a declared dependency in tools/layers.txt)"});
      }
    }
  }
}

}  // namespace lint
}  // namespace tsg
