// Lexer — the token stream behind tsglint (tools/tsglint.cc).
//
// A real C++ tokenizer, not a pile of regexes: line splices, raw strings,
// nested-looking comments, char literals and string prefixes are handled
// the way the compiler handles them, so rules built on the stream cannot be
// fooled by a forbidden identifier inside a string literal or a comment —
// the failure mode that limited the old tools/lint.py.
//
// Scope: tokens sufficient for project-invariant analysis, not a compiler
// front end. Identifiers and keywords share one kind (rules match text);
// numbers are one opaque kind; only the multi-char punctuators rules need
// (`::`, `->`, `.*`-free) are fused — everything else is single-char
// punctuation. Comments are preserved in a side list because the annotation
// grammar (`tsg:hot`, `tsg:mo(...)`, `NOLINT(tsg-*)`) lives in them.
//
// The analysis layer is deliberately dependency-free (see tools/layers.txt:
// `analysis` sits beside `common` at the bottom of the DAG) so the linter
// binary can never tangle with the runtime it checks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsg {
namespace lint {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // identifiers and keywords alike
  kNumber,      // any pp-number (integer, float, suffixes, separators)
  kString,      // string literal, prefix and quotes included in text
  kChar,        // character literal
  kPunct,       // operators and punctuation; `::` and `->` come fused
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;    // 1-based physical line of the first character
  int column = 0;  // 1-based
};

// A comment with its physical position. `text` keeps the delimiters
// (`// ...` or `/* ... */`); block comments may span lines (`line` is where
// they start).
struct Comment {
  std::string text;
  int line = 0;
  int column = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes a translation unit. Never fails: unterminated constructs lex to
// the end of input (the analyses care about real, compiling code; garbage
// in garbage out).
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace lint
}  // namespace tsg
