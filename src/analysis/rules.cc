// Per-file passes: the four legacy lint.py rules re-based onto the token
// stream (immune to comment/string spoofing, and call sites may now span
// lines), plus the two annotation-driven concurrency rules (tsg-hot-path,
// tsg-atomics).
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"

namespace tsg {
namespace lint {

namespace {

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool isIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// Index of the matching `)` for the `(` at `open`, or tokens.size().
std::size_t matchParen(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (isPunct(tokens[i], "(")) {
      ++depth;
    } else if (isPunct(tokens[i], ")")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return tokens.size();
}

// True when token i is a member access: preceded by `.` or `->`.
bool isMemberAccess(const std::vector<Token>& tokens, std::size_t i) {
  return i > 0 && (isPunct(tokens[i - 1], ".") || isPunct(tokens[i - 1], "->"));
}

// True when token i is qualified (preceded by `::`).
bool isQualified(const std::vector<Token>& tokens, std::size_t i) {
  return i > 0 && isPunct(tokens[i - 1], "::");
}

void emit(const SourceFile& f, int line, const char* rule,
          std::string message, std::vector<Diagnostic>& out) {
  out.push_back(Diagnostic{f.path, line, rule, std::move(message)});
}

}  // namespace

// ---------------------------------------------------------------- trace ---

void checkTraceLiteral(const SourceFile& f, std::vector<Diagnostic>& out) {
  if (f.path == "src/common/trace.h" || f.path == "src/common/trace.cc") {
    return;
  }
  const auto& tokens = f.lex.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }
    const bool span_like =
        (t.text == "TraceSpan" &&
         (isPunct(tokens[i + 1], "(") || isPunct(tokens[i + 1], "{")));
    const bool call_like =
        ((t.text == "traceInstant" || t.text == "traceCounter") &&
         isPunct(tokens[i + 1], "("));
    if (span_like || call_like) {
      if (i + 2 >= tokens.size() ||
          (tokens[i + 2].kind != TokenKind::kString &&
           !isIdent(tokens[i + 2], "nullptr"))) {
        emit(f, t.line, "trace-literal",
             "trace category/name must be a string literal (TraceLiteral), "
             "not a computed value",
             out);
      }
    }
    if (t.text == "TraceLiteral") {
      // Both the temporary form `TraceLiteral{x}` and the declaration form
      // `TraceLiteral lit{x}` construct one; skip the variable name.
      std::size_t open = i + 1;
      if (open < tokens.size() &&
          tokens[open].kind == TokenKind::kIdentifier) {
        ++open;
      }
      if (open + 1 < tokens.size() &&
          (isPunct(tokens[open], "(") || isPunct(tokens[open], "{")) &&
          tokens[open + 1].kind == TokenKind::kIdentifier &&
          tokens[open + 1].text != "nullptr") {
        emit(f, t.line, "trace-literal",
             "TraceLiteral must be constructed from a string literal or "
             "nullptr",
             out);
      }
    }
  }
}

// --------------------------------------------------------------- thread ---

void checkNakedThread(const SourceFile& f, std::vector<Diagnostic>& out) {
  if (startsWith(f.path, "src/runtime/") ||
      startsWith(f.path, "src/common/thread_pool.") ||
      startsWith(f.path, "tests/") || startsWith(f.path, "bench/")) {
    return;
  }
  const auto& tokens = f.lex.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (isIdent(tokens[i], "std") && isPunct(tokens[i + 1], "::") &&
        (isIdent(tokens[i + 2], "thread") ||
         isIdent(tokens[i + 2], "jthread"))) {
      emit(f, tokens[i].line, "naked-thread",
           "spawn workers via runtime/Cluster or common/ThreadPool, not "
           "std::thread",
           out);
    }
  }
}

// ------------------------------------------------------------------ rng ---

void checkUnseededRng(const SourceFile& f, std::vector<Diagnostic>& out) {
  if (startsWith(f.path, "src/common/rng.")) {
    return;
  }
  static const std::set<std::string> kBannedCalls = {"rand", "srand",
                                                     "drand48", "srand48"};
  static const std::set<std::string> kBannedTypes = {
      "random_device", "mt19937", "mt19937_64", "default_random_engine"};
  const auto& tokens = f.lex.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }
    if (kBannedCalls.count(t.text) != 0 && i + 1 < tokens.size() &&
        isPunct(tokens[i + 1], "(") && !isQualified(tokens, i) &&
        !isMemberAccess(tokens, i)) {
      emit(f, t.line, "unseeded-rng",
           "'" + t.text +
               "' bypasses common/rng; all randomness must be seeded "
               "through tsg::Rng for reproducibility",
           out);
    }
    if (kBannedTypes.count(t.text) != 0 && i >= 2 &&
        isIdent(tokens[i - 2], "std") && isPunct(tokens[i - 1], "::")) {
      emit(f, t.line, "unseeded-rng",
           "'std::" + t.text +
               "' bypasses common/rng; all randomness must be seeded "
               "through tsg::Rng for reproducibility",
           out);
    }
  }
}

// --------------------------------------------------------------- metric ---

namespace {

// <subsystem>.<snake_case>, optionally more dotted segments; first segment
// starts with a letter, later ones with a letter or digit.
bool metricNameOk(std::string_view name) {
  std::size_t begin = 0;
  int segments = 0;
  while (begin <= name.size()) {
    std::size_t end = name.find('.', begin);
    if (end == std::string_view::npos) {
      end = name.size();
    }
    const std::string_view seg = name.substr(begin, end - begin);
    if (seg.empty()) {
      return false;
    }
    const char first = seg.front();
    const bool first_ok =
        segments == 0 ? (first >= 'a' && first <= 'z')
                      : ((first >= 'a' && first <= 'z') ||
                         (first >= '0' && first <= '9'));
    if (!first_ok) {
      return false;
    }
    for (const char c : seg.substr(1)) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        return false;
      }
    }
    ++segments;
    if (end == name.size()) {
      break;
    }
    begin = end + 1;
  }
  return segments >= 2;
}

}  // namespace

void checkMetricName(const SourceFile& f, std::vector<Diagnostic>& out) {
  if (startsWith(f.path, "src/common/metrics.") ||
      startsWith(f.path, "tests/")) {
    return;
  }
  const auto& tokens = f.lex.tokens;
  for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "counter" && t.text != "gauge" && t.text != "histogram")) {
      continue;
    }
    if (!isMemberAccess(tokens, i) || !isPunct(tokens[i + 1], "(")) {
      continue;
    }
    if (i + 2 >= tokens.size()) {
      continue;
    }
    const Token& arg = tokens[i + 2];
    if (isPunct(arg, ")")) {
      continue;  // zero-arg overload, not a name lookup
    }
    if (arg.kind != TokenKind::kString) {
      emit(f, t.line, "metric-name",
           t.text +
               "() name must be a string literal, not a computed value "
               "(Prometheus series names must be stable)",
           out);
      continue;
    }
    // Strip the quotes (plain literals only reach here; prefixes would be
    // part of the text and fail the name check anyway).
    std::string_view name = arg.text;
    if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
      name = name.substr(1, name.size() - 2);
    }
    if (!metricNameOk(name)) {
      emit(f, t.line, "metric-name",
           "metric name \"" + std::string(name) +
               "\" must follow <subsystem>.<snake_case> (e.g. "
               "\"bus.inflight_messages\")",
           out);
    }
  }
}

// ------------------------------------------------------------- hot-path ---

namespace {

// Does the balanced paren group opening at `open` mention any identifier in
// `needles` at any depth?
bool parensContain(const std::vector<Token>& tokens, std::size_t open,
                   const std::set<std::string>& needles) {
  const std::size_t close = matchParen(tokens, open);
  for (std::size_t i = open + 1; i < close; ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier &&
        needles.count(tokens[i].text) != 0) {
      return true;
    }
  }
  return false;
}

const std::set<std::string>& nonBlockingLockTags() {
  static const std::set<std::string> kTags = {"try_to_lock", "defer_lock",
                                              "adopt_lock"};
  return kTags;
}

}  // namespace

void checkHotPath(const SourceFile& f, std::vector<Diagnostic>& out) {
  const auto& tokens = f.lex.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!f.isHot(i)) {
      continue;
    }
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }
    const int line = t.line;

    if (t.text == "new" && !isMemberAccess(tokens, i)) {
      emit(f, line, "hot-path", "allocation (new) in a tsg:hot region", out);
      continue;
    }
    if ((t.text == "malloc" || t.text == "calloc" || t.text == "realloc") &&
        i + 1 < tokens.size() && isPunct(tokens[i + 1], "(")) {
      emit(f, line, "hot-path",
           "allocation (" + t.text + ") in a tsg:hot region", out);
      continue;
    }
    if (t.text == "string" && isQualified(tokens, i) && i >= 2 &&
        isIdent(tokens[i - 2], "std") &&
        !(i + 1 < tokens.size() && (isPunct(tokens[i + 1], "&") ||
                                    isPunct(tokens[i + 1], "*") ||
                                    isPunct(tokens[i + 1], "::")))) {
      emit(f, line, "hot-path",
           "std::string construction in a tsg:hot region (allocates)", out);
      continue;
    }
    if (t.text == "throw") {
      emit(f, line, "hot-path", "throw in a tsg:hot region", out);
      continue;
    }
    if (t.text == "lock_guard" || t.text == "scoped_lock") {
      emit(f, line, "hot-path",
           "blocking " + t.text + " in a tsg:hot region", out);
      continue;
    }
    if ((t.text == "unique_lock" || t.text == "shared_lock") &&
        !isMemberAccess(tokens, i)) {
      // Find the constructor argument list; try_to_lock/defer_lock forms
      // are non-blocking and allowed.
      std::size_t j = i + 1;
      if (j < tokens.size() && isPunct(tokens[j], "<")) {
        int angle = 0;
        for (; j < tokens.size(); ++j) {
          if (isPunct(tokens[j], "<")) {
            ++angle;
          } else if (isPunct(tokens[j], ">") && --angle == 0) {
            ++j;
            break;
          }
        }
      }
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
        ++j;  // variable name
      }
      if (j < tokens.size() &&
          (isPunct(tokens[j], "(") || isPunct(tokens[j], "{")) &&
          !parensContain(tokens, j, nonBlockingLockTags())) {
        emit(f, line, "hot-path",
             "blocking " + t.text +
                 " in a tsg:hot region (use std::try_to_lock)",
             out);
      }
      continue;
    }
    if (t.text == "lock" && isMemberAccess(tokens, i) &&
        i + 1 < tokens.size() && isPunct(tokens[i + 1], "(")) {
      emit(f, line, "hot-path", "blocking mutex lock() in a tsg:hot region",
           out);
      continue;
    }
    if ((t.text == "wait" || t.text == "wait_for" || t.text == "wait_until") &&
        isMemberAccess(tokens, i) && i + 1 < tokens.size() &&
        isPunct(tokens[i + 1], "(")) {
      emit(f, line, "hot-path", "blocking " + t.text + "() in a tsg:hot region",
           out);
      continue;
    }
    if (t.text == "sleep_for" || t.text == "sleep_until" ||
        t.text == "usleep" || t.text == "nanosleep") {
      emit(f, line, "hot-path", "blocking sleep in a tsg:hot region", out);
      continue;
    }
  }
}

// -------------------------------------------------------------- atomics ---

namespace {

// Lines "covered" by a tsg:mo(<why>) tag: the tag's comment block (a run of
// comments on contiguous lines) plus the first line after it, so both
//     x.load(std::memory_order_relaxed);  // tsg:mo(why)
// and
//     // tsg:mo(why spanning
//     // two comment lines)
//     x.load(std::memory_order_relaxed);
// are tagged.
std::set<int> moCoveredLines(const SourceFile& f) {
  std::set<int> covered;
  int active_end = -1;  // last line still part of a tagged comment block
  for (const Comment& c : f.lex.comments) {
    int end = c.line;
    for (const char ch : c.text) {
      if (ch == '\n') {
        ++end;
      }
    }
    const bool tagged = c.text.find("tsg:mo(") != std::string::npos;
    if (tagged || c.line <= active_end + 1) {
      for (int l = c.line; l <= end + 1; ++l) {
        covered.insert(l);
      }
      if (end > active_end || tagged) {
        active_end = end;
      }
    }
  }
  return covered;
}

bool isExplicitOrderName(const std::string& text) {
  return text == "memory_order_relaxed" || text == "memory_order_acquire" ||
         text == "memory_order_release" || text == "memory_order_acq_rel" ||
         text == "memory_order_consume";
}

const std::set<std::string>& atomicMemberOps() {
  static const std::set<std::string> kOps = {
      "load",          "store",          "exchange",
      "fetch_add",     "fetch_sub",      "fetch_and",
      "fetch_or",      "fetch_xor",      "compare_exchange_weak",
      "compare_exchange_strong"};
  return kOps;
}

}  // namespace

void checkAtomics(const SourceFile& f, std::vector<Diagnostic>& out) {
  const auto& tokens = f.lex.tokens;
  const std::set<int> covered = moCoveredLines(f);

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }

    // Weaker-than-seq_cst order: must carry a tsg:mo(<why>) justification.
    bool weak_order = isExplicitOrderName(t.text);
    // `std::memory_order::relaxed` enum-class spelling.
    if (!weak_order && isIdent(t, "memory_order") && i + 2 < tokens.size() &&
        isPunct(tokens[i + 1], "::") &&
        isExplicitOrderName("memory_order_" + tokens[i + 2].text)) {
      weak_order = true;
    }
    if (weak_order && covered.count(t.line) == 0) {
      emit(f, t.line, "atomics",
           "relaxed/acquire/release memory_order needs a '// tsg:mo(<why>)' "
           "justification on this or the preceding comment line",
           out);
      continue;
    }

    // Defaulted (seq_cst) atomic ops are too strong for hot regions.
    if (f.isHot(i) && atomicMemberOps().count(t.text) != 0 &&
        isMemberAccess(tokens, i) && i + 1 < tokens.size() &&
        isPunct(tokens[i + 1], "(")) {
      const std::size_t close = matchParen(tokens, i + 1);
      bool has_order = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            startsWith(tokens[j].text, "memory_order")) {
          has_order = true;
          break;
        }
      }
      if (!has_order) {
        emit(f, t.line, "atomics",
             "atomic " + t.text +
                 "() defaults to seq_cst inside a tsg:hot region; pass an "
                 "explicit memory_order",
             out);
      }
    }
  }
}

}  // namespace lint
}  // namespace tsg
