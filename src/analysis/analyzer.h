// Analyzer — tsglint's pass framework over lexed translation units.
//
// Rule catalogue (ids are used in diagnostics and NOLINT suppressions):
//
//   tsg-layering       #include edges must follow the module DAG declared
//                      in tools/layers.txt; the declared graph itself must
//                      be acyclic. NOT suppressible — a back-edge is fixed,
//                      never waived.
//   tsg-lock-order     the global lock graph (per-function mutex-acquire
//                      nesting plus an approximate intra-module call graph,
//                      seeded from tools/lock_order.txt) must be acyclic.
//                      NOT suppressible.
//   tsg-hot-path       a `// tsg:hot` region (the next braced block) must
//                      not allocate, construct std::string, take a blocking
//                      mutex/condvar, throw, or enter a blocking syscall.
//   tsg-atomics        every relaxed/acquire/release/acq_rel memory_order
//                      use carries a `// tsg:mo(<why>)` tag on its own or
//                      the previous line; atomic ops defaulting to seq_cst
//                      inside a tsg:hot region are flagged.
//   tsg-trace-literal  trace call sites pass literals (see common/trace.h).
//   tsg-naked-thread   std::thread/jthread only in the scheduling layer.
//   tsg-unseeded-rng   all randomness flows through common/rng.
//   tsg-metric-name    metric names are <subsystem>.<snake_case> literals.
//
// A `NOLINT(tsg-<rule>)` comment on the diagnosed line suppresses the
// line-anchored rules, mirroring the old tools/lint.py contract. Files
// under a `lint_fixtures` directory are skipped in directory scans (they
// are known-bad on purpose) but lint normally when named explicitly.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.h"

namespace tsg {
namespace lint {

struct Diagnostic {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;
  std::string rule;  // without the "tsg-" prefix
  std::string message;
};

// One lexed file plus the derived annotation state rules share.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  LexResult lex;
  // NOLINT(tsg-*) suppressions: line -> suppressed rule names.
  std::map<int, std::set<std::string>> suppressions;
  // Half-open token ranges [begin, end) marked hot by `// tsg:hot`.
  std::vector<std::pair<std::size_t, std::size_t>> hot_regions;

  // First path segment ("src" files report their second: src/runtime/x.cc
  // -> "runtime"; tools/x.cc -> "tools").
  [[nodiscard]] std::string module() const;
  [[nodiscard]] bool isHot(std::size_t token_index) const;
};

struct AnalyzerOptions {
  std::string root;              // absolute repo root
  std::string layers_path;       // default <root>/tools/layers.txt
  std::string lock_order_path;   // default <root>/tools/lock_order.txt
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options);

  // Lints the given repo-relative files (plus the cross-file layering and
  // lock-order passes) and returns surviving diagnostics sorted by
  // (file, line, rule). IO errors surface as rule "io" diagnostics.
  [[nodiscard]] std::vector<Diagnostic> run(
      const std::vector<std::string>& files) const;

  // Expands repo-relative files/directories into the lint file set
  // (.cc/.h, sorted; `lint_fixtures` directories skipped).
  [[nodiscard]] std::vector<std::string> collectFiles(
      const std::vector<std::string>& paths) const;

 private:
  AnalyzerOptions options_;
};

// Parses a lexed file into shared annotation state (suppressions, hot
// regions). Exposed for tests.
[[nodiscard]] SourceFile buildSourceFile(std::string path, LexResult lex);

// Individual passes (exposed for fixture tests). Each appends diagnostics.
void checkTraceLiteral(const SourceFile& f, std::vector<Diagnostic>& out);
void checkNakedThread(const SourceFile& f, std::vector<Diagnostic>& out);
void checkUnseededRng(const SourceFile& f, std::vector<Diagnostic>& out);
void checkMetricName(const SourceFile& f, std::vector<Diagnostic>& out);
void checkHotPath(const SourceFile& f, std::vector<Diagnostic>& out);
void checkAtomics(const SourceFile& f, std::vector<Diagnostic>& out);
void checkLayering(const std::vector<SourceFile>& files,
                   const std::string& layers_text,
                   std::vector<Diagnostic>& out);
void checkLockOrder(const std::vector<SourceFile>& files,
                    const std::string& seed_text,
                    std::vector<Diagnostic>& out);

}  // namespace lint
}  // namespace tsg
