#include "stream/builder.h"

#include <string>
#include <utility>

namespace tsg {
namespace stream {

namespace {

// Writes `value` into col[index]; returns true if the stored value changed.
bool applyCell(AttributeColumn& col, std::uint32_t index,
               const AttrValue& value) {
  switch (col.type()) {
    case AttrType::kInt64: {
      auto& cell = col.asInt64()[index];
      if (cell == value.i64) {
        return false;
      }
      cell = value.i64;
      return true;
    }
    case AttrType::kDouble: {
      auto& cell = col.asDouble()[index];
      if (cell == value.f64) {
        return false;
      }
      cell = value.f64;
      return true;
    }
    case AttrType::kBool: {
      auto& cell = col.asBool()[index];
      const std::uint8_t raw = value.flag ? 1 : 0;
      if (cell == raw) {
        return false;
      }
      cell = raw;
      return true;
    }
    case AttrType::kString: {
      auto& cell = col.asString()[index];
      if (cell == value.str) {
        return false;
      }
      cell = value.str;
      return true;
    }
    case AttrType::kStringList: {
      auto& cell = col.asStringList()[index];
      if (cell == value.list) {
        return false;
      }
      cell = value.list;
      return true;
    }
  }
  return false;
}

}  // namespace

InstanceBuilder::InstanceBuilder(GraphTemplatePtr tmpl, std::int64_t t0,
                                 std::int64_t delta, Timestep first_timestep)
    : tmpl_(std::move(tmpl)), t0_(t0), delta_(delta), open_(first_timestep) {
  TSG_CHECK(tmpl_ != nullptr);
  TSG_CHECK_MSG(delta_ > 0, "period delta must be positive");
}

Timestep InstanceBuilder::timestepOf(std::int64_t timestamp) const {
  std::int64_t diff = timestamp - t0_;
  // Floor division so pre-history timestamps map below timestep 0.
  if (diff < 0) {
    diff -= delta_ - 1;
  }
  return static_cast<Timestep>(diff / delta_);
}

Status InstanceBuilder::stage(const GraphEvent& ev) {
  const AttributeSchema& schema = ev.target == EventTarget::kVertex
                                      ? tmpl_->vertexSchema()
                                      : tmpl_->edgeSchema();
  const std::size_t domain = ev.target == EventTarget::kVertex
                                 ? tmpl_->numVertices()
                                 : tmpl_->numEdges();
  if (ev.attr >= schema.size()) {
    return Status::invalidArgument("event attr " + std::to_string(ev.attr) +
                                   " out of range");
  }
  if (ev.index >= domain) {
    return Status::invalidArgument("event index " + std::to_string(ev.index) +
                                   " out of range");
  }
  if (schema.at(ev.attr).type != ev.value.type) {
    return Status::invalidArgument(
        "event value type mismatch for attribute '" + schema.at(ev.attr).name +
        "'");
  }
  const auto key = std::make_tuple(static_cast<std::uint8_t>(ev.target),
                                   ev.attr, ev.index);
  auto order_bytes = ev.value.canonicalBytes();
  auto [it, inserted] = staged_.try_emplace(key);
  Winner& w = it->second;
  // Arrival-order independence: the winning write is the largest
  // (timestamp, canonical bytes) pair; duplicates are no-ops.
  if (inserted || std::tie(ev.timestamp, order_bytes) >
                      std::tie(w.timestamp, w.order_bytes)) {
    w.timestamp = ev.timestamp;
    w.order_bytes = std::move(order_bytes);
    w.value = ev.value;
  }
  return Status::ok();
}

InstanceBuilder::Sealed InstanceBuilder::seal() {
  Sealed out;
  GraphInstance next(*tmpl_, open_, t0_ + static_cast<std::int64_t>(open_) *
                                             delta_);
  if (have_prev_) {
    for (std::size_t a = 0; a < next.numVertexAttrs(); ++a) {
      next.vertexCol(a) = prev_.vertexCol(a);
    }
    for (std::size_t a = 0; a < next.numEdgeAttrs(); ++a) {
      next.edgeCol(a) = prev_.edgeCol(a);
    }
  }
  for (const auto& [key, winner] : staged_) {
    const auto [target, attr, index] = key;
    if (target == static_cast<std::uint8_t>(EventTarget::kVertex)) {
      if (applyCell(next.vertexCol(attr), index, winner.value)) {
        out.dirty_vertices.push_back(index);
      }
    } else {
      if (applyCell(next.edgeCol(attr), index, winner.value)) {
        out.dirty_edges.push_back(index);
      }
    }
  }
  staged_.clear();
  prev_ = next;
  have_prev_ = true;
  ++open_;
  out.instance = std::move(next);
  return out;
}

}  // namespace stream
}  // namespace tsg
