// InstanceBuilder — accumulates staged events into the next GraphInstance.
//
// The streaming model is carry-forward: the instance for timestep t starts
// as a copy of t-1 (for the first timestep, the zero/empty instance) and
// each staged event overwrites one attribute cell. Within a timestep the
// stream is unordered, so conflicting writes to one cell resolve by a total
// order independent of arrival: the winner is the lexicographically largest
// (timestamp, canonical value bytes) pair. Duplicates are idempotent by the
// same rule.
//
// seal() applies the winners and reports exactly which cells changed value
// versus the carried base — the raw material of the dirty-subgraph tracking
// that powers incremental recomputation.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "graph/collection.h"
#include "graph/graph_instance.h"
#include "graph/graph_template.h"
#include "stream/event.h"

namespace tsg {
namespace stream {

class InstanceBuilder {
 public:
  // first_timestep is the first timestep this builder will seal.
  InstanceBuilder(GraphTemplatePtr tmpl, std::int64_t t0, std::int64_t delta,
                  Timestep first_timestep = 0);

  // Timestep whose window [t0 + t·δ, t0 + (t+1)·δ) contains `timestamp`.
  // Negative for pre-history timestamps.
  [[nodiscard]] Timestep timestepOf(std::int64_t timestamp) const;

  [[nodiscard]] Timestep openTimestep() const { return open_; }
  // Number of distinct cells staged for the open timestep (winners, not raw
  // events — the seal-size trigger counts these).
  [[nodiscard]] std::size_t stagedCells() const { return staged_.size(); }

  // Stages `ev` into the open timestep (the caller routes by timestepOf).
  // Rejects events whose attr/index is out of range or whose value type
  // mismatches the schema; nothing is staged on error.
  Status stage(const GraphEvent& ev);

  struct Sealed {
    GraphInstance instance;
    // Dense template indices whose cells changed value vs. the carried
    // base. Unsorted, may repeat (one entry per changed cell).
    std::vector<VertexIndex> dirty_vertices;
    std::vector<EdgeIndex> dirty_edges;
  };

  // Seals the open timestep: carried copy of the previous instance plus
  // staged winners. Advances the open timestep by one and clears staging.
  Sealed seal();

 private:
  GraphTemplatePtr tmpl_;
  std::int64_t t0_;
  std::int64_t delta_;
  Timestep open_;
  bool have_prev_ = false;
  GraphInstance prev_;  // last sealed instance (carry-forward base)

  struct Winner {
    std::int64_t timestamp = 0;
    std::vector<std::uint8_t> order_bytes;  // canonical value encoding
    AttrValue value;
  };
  // (target, attr, index) → winning write. An ordered map keeps seal()
  // deterministic regardless of arrival order.
  std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>, Winner>
      staged_;
};

}  // namespace stream
}  // namespace tsg
