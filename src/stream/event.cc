#include "stream/event.h"

namespace tsg {
namespace stream {

AttrValue AttrValue::ofInt64(std::int64_t v) {
  AttrValue out;
  out.type = AttrType::kInt64;
  out.i64 = v;
  return out;
}

AttrValue AttrValue::ofDouble(double v) {
  AttrValue out;
  out.type = AttrType::kDouble;
  out.f64 = v;
  return out;
}

AttrValue AttrValue::ofBool(bool v) {
  AttrValue out;
  out.type = AttrType::kBool;
  out.flag = v;
  return out;
}

AttrValue AttrValue::ofString(std::string v) {
  AttrValue out;
  out.type = AttrType::kString;
  out.str = std::move(v);
  return out;
}

AttrValue AttrValue::ofStringList(std::vector<std::string> v) {
  AttrValue out;
  out.type = AttrType::kStringList;
  out.list = std::move(v);
  return out;
}

namespace {

void writeValue(const AttrValue& v, BinaryWriter& w) {
  w.writeU8(static_cast<std::uint8_t>(v.type));
  switch (v.type) {
    case AttrType::kInt64:
      w.writeI64(v.i64);
      break;
    case AttrType::kDouble:
      w.writeDouble(v.f64);
      break;
    case AttrType::kBool:
      w.writeBool(v.flag);
      break;
    case AttrType::kString:
      w.writeString(v.str);
      break;
    case AttrType::kStringList:
      w.writeStringVector(v.list);
      break;
  }
}

Status readValue(BinaryReader& r, AttrValue& out) {
  std::uint8_t tag = 0;
  TSG_RETURN_IF_ERROR(r.readU8(tag));
  if (tag > static_cast<std::uint8_t>(AttrType::kStringList)) {
    return Status::corruptData("event value: unknown type tag " +
                               std::to_string(tag));
  }
  out.type = static_cast<AttrType>(tag);
  switch (out.type) {
    case AttrType::kInt64:
      return r.readI64(out.i64);
    case AttrType::kDouble:
      return r.readDouble(out.f64);
    case AttrType::kBool:
      return r.readBool(out.flag);
    case AttrType::kString:
      return r.readString(out.str);
    case AttrType::kStringList:
      return r.readStringVector(out.list);
  }
  return Status::internal("unreachable");
}

}  // namespace

std::vector<std::uint8_t> AttrValue::canonicalBytes() const {
  BinaryWriter w;
  writeValue(*this, w);
  return w.takeBuffer();
}

void encodeEvent(const GraphEvent& ev, BinaryWriter& w) {
  BinaryWriter payload;
  payload.writeU8(static_cast<std::uint8_t>(ev.target));
  payload.writeI64(ev.timestamp);
  payload.writeU32(ev.attr);
  payload.writeU32(ev.index);
  writeValue(ev.value, payload);
  w.writeU32(kFrameMagic);
  w.writeU32(static_cast<std::uint32_t>(payload.size()));
  w.writeBytes(payload.buffer().data(), payload.size());
}

void encodeEndOfStream(BinaryWriter& w) {
  w.writeU32(kFrameMagic);
  w.writeU32(0);
}

Result<DecodedFrame> decodeFrame(std::span<const std::uint8_t> bytes) {
  // Check the magic byte-by-byte so a short buffer that could still grow
  // into a valid frame reports kNeedMore, while a wrong byte fails fast.
  static constexpr std::uint8_t kMagicBytes[4] = {'T', 'S', 'E', 'V'};
  const std::size_t have = bytes.size();
  for (std::size_t i = 0; i < have && i < 4; ++i) {
    if (bytes[i] != kMagicBytes[i]) {
      return Status::corruptData("event frame: bad magic");
    }
  }
  DecodedFrame out;
  if (have < 8) {
    return out;  // kNeedMore
  }
  BinaryReader header(bytes.subspan(0, 8));
  std::uint32_t magic = 0;
  std::uint32_t len = 0;
  TSG_RETURN_IF_ERROR(header.readU32(magic));
  TSG_RETURN_IF_ERROR(header.readU32(len));
  if (len > kMaxFramePayload) {
    return Status::corruptData("event frame: payload length " +
                               std::to_string(len) + " exceeds limit");
  }
  if (len == 0) {
    out.kind = DecodedFrame::Kind::kEnd;
    out.consumed = 8;
    return out;
  }
  if (have < 8 + static_cast<std::size_t>(len)) {
    return out;  // kNeedMore
  }
  BinaryReader r(bytes.subspan(8, len));
  std::uint8_t target = 0;
  TSG_RETURN_IF_ERROR(r.readU8(target));
  if (target > static_cast<std::uint8_t>(EventTarget::kEdge)) {
    return Status::corruptData("event frame: unknown target " +
                               std::to_string(target));
  }
  out.event.target = static_cast<EventTarget>(target);
  TSG_RETURN_IF_ERROR(r.readI64(out.event.timestamp));
  TSG_RETURN_IF_ERROR(r.readU32(out.event.attr));
  TSG_RETURN_IF_ERROR(r.readU32(out.event.index));
  TSG_RETURN_IF_ERROR(readValue(r, out.event.value));
  if (!r.atEnd()) {
    return Status::corruptData("event frame: trailing bytes in payload");
  }
  out.kind = DecodedFrame::Kind::kEvent;
  out.consumed = 8 + static_cast<std::size_t>(len);
  return out;
}

}  // namespace stream
}  // namespace tsg
