// Graph event model + framed wire codec for streaming ingestion.
//
// The streaming front door (ROADMAP item 2) consumes an append-only stream
// of attribute events against the fixed template Ĝ: "vertex v's attribute a
// became x at time ts" / "edge e's attribute a became x at time ts". The
// topology never changes mid-stream (the paper's model, §II-A: instances
// vary values, the template is time-invariant), so an event addresses a
// cell by (target kind, attribute index, dense template index).
//
// Wire format (FileTailSource, tsgcli stream --events): a sequence of
// frames, each
//     [u32 magic 'TSEV'] [u32 payload_len] [payload]
// where payload_len == 0 marks end-of-stream and a non-empty payload is
//     [u8 target] [i64 timestamp] [u32 attr] [u32 index] [u8 type tag]
//     [typed value]
// (BinaryWriter encoding: little-endian fixed ints, varint-prefixed
// strings). Decoding is strict — unknown targets/tags, oversized lengths
// and payload bytes left unconsumed are all rejected as corrupt, never
// skipped. Truncation at a frame boundary is distinguishable from
// corruption so a tailing reader can wait for more bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "graph/attribute.h"
#include "graph/types.h"

namespace tsg {
namespace stream {

enum class EventTarget : std::uint8_t { kVertex = 0, kEdge = 1 };

// A dynamically typed attribute value. Exactly one member (per `type`) is
// meaningful; the others stay default so equality works member-wise.
struct AttrValue {
  AttrType type = AttrType::kInt64;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool flag = false;
  std::string str;
  std::vector<std::string> list;

  static AttrValue ofInt64(std::int64_t v);
  static AttrValue ofDouble(double v);
  static AttrValue ofBool(bool v);
  static AttrValue ofString(std::string v);
  static AttrValue ofStringList(std::vector<std::string> v);

  // Canonical byte encoding (type tag + BinaryWriter value). Used both on
  // the wire and as the total-order tiebreak that makes same-timestamp
  // conflicting events resolve identically under any arrival order.
  [[nodiscard]] std::vector<std::uint8_t> canonicalBytes() const;

  bool operator==(const AttrValue&) const = default;
};

struct GraphEvent {
  EventTarget target = EventTarget::kVertex;
  std::int64_t timestamp = 0;
  std::uint32_t attr = 0;   // index into the template's vertex/edge schema
  std::uint32_t index = 0;  // dense template VertexIndex / EdgeIndex
  AttrValue value;

  bool operator==(const GraphEvent&) const = default;
};

// 'T','S','E','V' on the wire (little-endian u32).
inline constexpr std::uint32_t kFrameMagic = 0x56455354;
// Upper bound on one payload; anything larger is corrupt, not ambitious.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

// Appends one event frame / the end-of-stream frame to `w`.
void encodeEvent(const GraphEvent& ev, BinaryWriter& w);
void encodeEndOfStream(BinaryWriter& w);

struct DecodedFrame {
  enum class Kind : std::uint8_t { kEvent, kEnd, kNeedMore };
  Kind kind = Kind::kNeedMore;
  GraphEvent event;       // valid when kind == kEvent
  std::size_t consumed = 0;  // bytes consumed; 0 when kNeedMore
};

// Decodes the frame at the front of `bytes`. kNeedMore means the bytes so
// far are a well-formed prefix of a frame (a tailing reader should wait for
// more); an error Status means the stream is definitely corrupt.
Result<DecodedFrame> decodeFrame(std::span<const std::uint8_t> bytes);

}  // namespace stream
}  // namespace tsg
