#include "stream/replay.h"

#include "common/serialize.h"

namespace tsg {
namespace stream {

namespace {

void diffColumn(const AttributeColumn& prev, const AttributeColumn& cur,
                EventTarget target, std::uint32_t attr, std::int64_t timestamp,
                std::vector<GraphEvent>& out) {
  const auto emit = [&](std::uint32_t index, AttrValue value) {
    GraphEvent ev;
    ev.target = target;
    ev.timestamp = timestamp;
    ev.attr = attr;
    ev.index = index;
    ev.value = std::move(value);
    out.push_back(std::move(ev));
  };
  switch (cur.type()) {
    case AttrType::kInt64: {
      const auto& a = prev.asInt64();
      const auto& b = cur.asInt64();
      for (std::uint32_t i = 0; i < b.size(); ++i) {
        if (a[i] != b[i]) {
          emit(i, AttrValue::ofInt64(b[i]));
        }
      }
      break;
    }
    case AttrType::kDouble: {
      const auto& a = prev.asDouble();
      const auto& b = cur.asDouble();
      for (std::uint32_t i = 0; i < b.size(); ++i) {
        if (a[i] != b[i]) {
          emit(i, AttrValue::ofDouble(b[i]));
        }
      }
      break;
    }
    case AttrType::kBool: {
      const auto& a = prev.asBool();
      const auto& b = cur.asBool();
      for (std::uint32_t i = 0; i < b.size(); ++i) {
        if (a[i] != b[i]) {
          emit(i, AttrValue::ofBool(b[i] != 0));
        }
      }
      break;
    }
    case AttrType::kString: {
      const auto& a = prev.asString();
      const auto& b = cur.asString();
      for (std::uint32_t i = 0; i < b.size(); ++i) {
        if (a[i] != b[i]) {
          emit(i, AttrValue::ofString(b[i]));
        }
      }
      break;
    }
    case AttrType::kStringList: {
      const auto& a = prev.asStringList();
      const auto& b = cur.asStringList();
      for (std::uint32_t i = 0; i < b.size(); ++i) {
        if (a[i] != b[i]) {
          emit(i, AttrValue::ofStringList(b[i]));
        }
      }
      break;
    }
  }
}

}  // namespace

std::vector<GraphEvent> eventsFromCollection(
    const TimeSeriesCollection& coll) {
  std::vector<GraphEvent> out;
  const GraphTemplate& tmpl = coll.graphTemplate();
  const GraphInstance zero(tmpl, 0, coll.t0());
  for (Timestep t = 0; t < static_cast<Timestep>(coll.numInstances()); ++t) {
    const GraphInstance& cur = coll.instance(t);
    const GraphInstance& prev = t == 0 ? zero : coll.instance(t - 1);
    for (std::uint32_t a = 0; a < cur.numVertexAttrs(); ++a) {
      diffColumn(prev.vertexCol(a), cur.vertexCol(a), EventTarget::kVertex, a,
                 cur.timestamp(), out);
    }
    for (std::uint32_t a = 0; a < cur.numEdgeAttrs(); ++a) {
      diffColumn(prev.edgeCol(a), cur.edgeCol(a), EventTarget::kEdge, a,
                 cur.timestamp(), out);
    }
  }
  return out;
}

Status writeEventFile(const std::string& path,
                      const std::vector<GraphEvent>& events,
                      bool end_marker) {
  BinaryWriter w;
  for (const GraphEvent& ev : events) {
    encodeEvent(ev, w);
  }
  if (end_marker) {
    encodeEndOfStream(w);
  }
  return writeFileBytes(path, w.buffer());
}

GraphInstance assembleInstance(const PartitionedGraph& pg,
                               const GraphTemplate& tmpl,
                               InstanceProvider& provider, Timestep t) {
  TSG_CHECK(pg.numPartitions() > 0);
  const PartitionInstanceData& first = provider.instanceFor(0, t);
  GraphInstance out(tmpl, first.timestep, first.timestamp);
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const PartitionInstanceData& data = provider.instanceFor(p, t);
    const Partition& part = pg.partition(p);
    for (std::uint32_t a = 0; a < out.numVertexAttrs(); ++a) {
      out.vertexCol(a).scatterFrom(data.vertex_cols[a], part.vertices);
    }
    for (std::uint32_t a = 0; a < out.numEdgeAttrs(); ++a) {
      out.edgeCol(a).scatterFrom(data.edge_cols[a], part.edges);
    }
  }
  return out;
}

}  // namespace stream
}  // namespace tsg
