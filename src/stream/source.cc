#include "stream/source.h"

#include <chrono>
#include <span>
#include <thread>
#include <utility>

namespace tsg {
namespace stream {

void MemoryEventSource::push(GraphEvent ev) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TSG_CHECK_MSG(!closed_, "push after close");
    queue_.push_back(std::move(ev));
  }
  cv_.notify_one();
}

void MemoryEventSource::push(std::vector<GraphEvent> evs) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TSG_CHECK_MSG(!closed_, "push after close");
    for (auto& ev : evs) {
      queue_.push_back(std::move(ev));
    }
  }
  cv_.notify_one();
}

void MemoryEventSource::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

Result<Poll> MemoryEventSource::next(GraphEvent& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) {
    return Poll::kEnd;
  }
  out = std::move(queue_.front());
  queue_.pop_front();
  return Poll::kEvent;
}

FileTailSource::FileTailSource(std::string path, bool follow,
                               std::int64_t poll_interval_us)
    : path_(std::move(path)),
      follow_(follow),
      poll_interval_us_(poll_interval_us) {}

bool FileTailSource::readMore() {
  if (!opened_) {
    file_.open(path_, std::ios::binary);
    if (!file_.is_open()) {
      return false;
    }
    opened_ = true;
  }
  // A tailed file hits EOF repeatedly; clear the flags so the next read
  // after an append succeeds.
  file_.clear();
  char chunk[4096];
  bool grew = false;
  while (file_.read(chunk, sizeof(chunk)) || file_.gcount() > 0) {
    const auto got = static_cast<std::size_t>(file_.gcount());
    const auto* p = reinterpret_cast<const std::uint8_t*>(chunk);
    buf_.insert(buf_.end(), p, p + got);
    grew = grew || got > 0;
    if (got < sizeof(chunk)) {
      break;
    }
  }
  return grew;
}

Result<Poll> FileTailSource::next(GraphEvent& out) {
  for (;;) {
    auto decoded =
        decodeFrame(std::span<const std::uint8_t>(buf_).subspan(pos_));
    if (!decoded.isOk()) {
      return decoded.status();
    }
    const DecodedFrame& frame = decoded.value();
    switch (frame.kind) {
      case DecodedFrame::Kind::kEvent:
        pos_ += frame.consumed;
        out = frame.event;
        return Poll::kEvent;
      case DecodedFrame::Kind::kEnd:
        pos_ += frame.consumed;
        return Poll::kEnd;
      case DecodedFrame::Kind::kNeedMore:
        break;
    }
    if (readMore()) {
      continue;
    }
    if (!follow_) {
      if (!opened_) {
        return Status::ioError("event file not found: " + path_);
      }
      if (pos_ == buf_.size()) {
        return Poll::kEnd;  // clean, frame-aligned EOF
      }
      return Status::corruptData("event file ends mid-frame: " + path_);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(poll_interval_us_));
  }
}

}  // namespace stream
}  // namespace tsg
