// StreamIngestor — the streaming front door (ROADMAP item 2).
//
// Pipeline:   EventSource → StreamIngestor → SealQueue → engine
//              (ingest thread)                (bounded)   (coordinator)
//
// The ingestor pulls events, routes them into an InstanceBuilder and seals
// the open timestep when the watermark advances (an event lands in a later
// window), when the staged-cell count hits a configured cap (memory guard),
// or when the source ends (remaining planned timesteps seal as carried
// copies so a streamed run covers the same horizon as its batch twin).
// Sealed instances travel through the bounded SealQueue: a full queue
// blocks the ingest thread — backpressure — so an engine that falls behind
// bounds memory instead of ballooning it.
//
// StreamingInstanceProvider is the engine-facing end: an InstanceProvider
// whose awaitTimestep (TimestepStream) pops the queue, materializes the
// per-partition slices and answers the dirty-subgraph queries that drive
// the incremental skip. Sealed timesteps are retained for the run's
// lifetime so a fault rollback can replay them.
//
// Counters: stream.events_ingested, stream.late_events,
// stream.sealed_timesteps, stream.seal_lag_ns (histogram),
// stream.seal_queue_depth (gauge).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gofs/instance_provider.h"
#include "partition/partitioned_graph.h"
#include "stream/builder.h"
#include "stream/source.h"

namespace tsg {
namespace stream {

// One sealed timestep in flight between ingest and execute.
struct SealedTimestep {
  Timestep timestep = 0;
  GraphInstance instance;
  // Indexed by SubgraphId: 1 if any cell of the subgraph changed.
  std::vector<std::uint8_t> subgraph_dirty;
};

// Bounded MPSC-ish handoff (in practice one producer, one consumer).
class SealQueue {
 public:
  explicit SealQueue(std::size_t capacity);

  // Blocks while the queue is full (backpressure on the ingest thread).
  void push(SealedTimestep item);
  // Blocks until an item arrives; false once closed and drained.
  bool pop(SealedTimestep& out);
  void close();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // High-water mark of the queue depth over the run (CI asserts this stays
  // within capacity — i.e. that backpressure, not growth, absorbed skew).
  [[nodiscard]] std::size_t maxDepth() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<SealedTimestep> items_;
  std::size_t capacity_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

struct IngestorOptions {
  Timestep first_timestep = 0;
  // Timesteps the run expects; the ingestor seals exactly this many (end of
  // source pads with carried copies, extra events beyond the horizon end
  // the stream).
  std::int32_t planned_timesteps = 0;
  // Staged-cell cap per timestep; 0 = watermark-only sealing. When a size
  // trigger fires, later events that still belong to the force-sealed
  // window roll forward into the next open timestep (documented memory-
  // bound semantics; digest-equality setups use watermark-only).
  std::size_t max_staged_cells = 0;
};

class StreamIngestor {
 public:
  StreamIngestor(GraphTemplatePtr tmpl, const PartitionedGraph& pg,
                 std::int64_t t0, std::int64_t delta, SealQueue& queue,
                 IngestorOptions options);

  // Pumps `source` until end-of-stream or the planned horizon. On corrupt
  // input, discards all staged (unsealed) state and returns the error —
  // nothing partial is ever sealed. Always closes the queue on return.
  Status run(EventSource& source);

  [[nodiscard]] std::uint64_t eventsIngested() const {
    return events_ingested_;
  }
  [[nodiscard]] std::uint64_t lateEvents() const { return late_events_; }
  [[nodiscard]] std::uint64_t sealedTimesteps() const {
    return sealed_timesteps_;
  }

 private:
  void sealOpen(bool size_triggered);

  GraphTemplatePtr tmpl_;
  const PartitionedGraph& pg_;
  SealQueue& queue_;
  IngestorOptions options_;
  InstanceBuilder builder_;
  std::int64_t open_since_ns_ = 0;
  bool last_seal_size_triggered_ = false;
  std::uint64_t events_ingested_ = 0;
  std::uint64_t late_events_ = 0;
  std::uint64_t sealed_timesteps_ = 0;
};

// Engine-facing end of the pipeline: numInstances() is the planned count
// (so batch and streamed runs agree on the horizon), instanceFor serves
// materialized per-partition slices, awaitTimestep pops the seal queue.
class StreamingInstanceProvider final : public InstanceProvider,
                                        public TimestepStream {
 public:
  StreamingInstanceProvider(const PartitionedGraph& pg, GraphTemplatePtr tmpl,
                            std::size_t planned_timesteps, std::int64_t t0,
                            std::int64_t delta, SealQueue& queue);

  [[nodiscard]] std::size_t numInstances() const override {
    return planned_;
  }
  [[nodiscard]] std::int64_t t0() const override { return t0_; }
  [[nodiscard]] std::int64_t delta() const override { return delta_; }
  const PartitionInstanceData& instanceFor(PartitionId p,
                                           Timestep t) override;
  std::int64_t takeLoadNs(PartitionId p) override;

  // TimestepStream
  bool awaitTimestep(Timestep t) override;
  [[nodiscard]] bool subgraphDirty(Timestep t, SubgraphId sg) const override;

  // Full-instance view of a sealed timestep (result reassembly, digests).
  [[nodiscard]] const GraphInstance& sealedInstance(Timestep t) const;
  [[nodiscard]] std::size_t sealedCount() const {
    return materialized_.size();
  }

 private:
  struct MaterializedTimestep {
    GraphInstance instance;
    std::vector<PartitionInstanceData> parts;  // by PartitionId
    std::vector<std::uint8_t> subgraph_dirty;  // by SubgraphId
  };

  const PartitionedGraph& pg_;
  GraphTemplatePtr tmpl_;
  std::size_t planned_;
  std::int64_t t0_;
  std::int64_t delta_;
  SealQueue& queue_;
  // unique_ptr elements: push_back must not invalidate references handed
  // out by instanceFor.
  std::vector<std::unique_ptr<MaterializedTimestep>> materialized_;
  std::vector<std::int64_t> load_ns_;  // per partition
};

// RAII ingest thread: runs ingestor.run(source) and joins on destruction.
class IngestThread {
 public:
  IngestThread(StreamIngestor& ingestor, EventSource& source);
  ~IngestThread() { (void)join(); }

  IngestThread(const IngestThread&) = delete;
  IngestThread& operator=(const IngestThread&) = delete;

  // Joins (idempotent) and returns the ingest Status.
  Status join();

 private:
  Status status_;
  bool joined_ = false;
  // Declared (and therefore initialized) last: the worker starts inside
  // this member's constructor and writes status_, so every other member
  // must already be alive — a fast-failing ingest would otherwise race
  // its error against status_'s own default construction.
  std::thread thread_;  // NOLINT(tsg-naked-thread)
};

}  // namespace stream
}  // namespace tsg
