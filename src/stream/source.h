// Event sources — where the ingestor pulls GraphEvents from.
//
// A source is a blocking pull iterator: next() parks the ingest thread
// until an event arrives or the stream ends. Two implementations:
//  * MemoryEventSource — a thread-safe in-process queue; tests and the
//    tsgcli replay path push generated events into it.
//  * FileTailSource — tails a framed event file (stream/event.h wire
//    format), re-reading as a writer appends; in follow mode it waits for
//    the explicit end-of-stream frame, otherwise a clean EOF at a frame
//    boundary ends the stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace tsg {
namespace stream {

enum class Poll : std::uint8_t { kEvent, kEnd };

class EventSource {
 public:
  virtual ~EventSource() = default;

  // Blocks until an event is available (returns kEvent with `out` filled),
  // the stream ends (kEnd), or the input turns out to be corrupt (error
  // Status — the ingestor aborts the stream without sealing anything
  // partial). Called only from the ingest thread.
  virtual Result<Poll> next(GraphEvent& out) = 0;
};

class MemoryEventSource final : public EventSource {
 public:
  void push(GraphEvent ev);
  void push(std::vector<GraphEvent> evs);
  // After close(), next() drains what is queued and then reports kEnd.
  void close();

  Result<Poll> next(GraphEvent& out) override;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<GraphEvent> queue_;
  bool closed_ = false;
};

class FileTailSource final : public EventSource {
 public:
  // follow=true: poll for appended frames until the end-of-stream frame
  // arrives (live tail). follow=false: a frame-aligned EOF is kEnd and a
  // partial trailing frame is corrupt (static file replay).
  explicit FileTailSource(std::string path, bool follow = true,
                          std::int64_t poll_interval_us = 2000);

  Result<Poll> next(GraphEvent& out) override;

 private:
  // Appends newly available file bytes to buf_; returns true if it grew.
  bool readMore();

  std::string path_;
  bool follow_;
  std::int64_t poll_interval_us_;
  std::ifstream file_;
  bool opened_ = false;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace stream
}  // namespace tsg
