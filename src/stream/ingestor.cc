#include "stream/ingestor.h"

#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"

namespace tsg {
namespace stream {

// ---------------------------------------------------------------------------
// SealQueue
// ---------------------------------------------------------------------------

SealQueue::SealQueue(std::size_t capacity) : capacity_(capacity) {
  TSG_CHECK_MSG(capacity_ > 0, "seal queue capacity must be >= 1");
}

void SealQueue::push(SealedTimestep item) {
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_push_.wait(lock,
                  [this] { return items_.size() < capacity_ || closed_; });
    TSG_CHECK_MSG(!closed_, "push into a closed seal queue");
    items_.push_back(std::move(item));
    depth = items_.size();
    max_depth_ = std::max(max_depth_, depth);
  }
  MetricsRegistry::global()
      .gauge("stream.seal_queue_depth")
      .set(static_cast<std::int64_t>(depth));
  cv_pop_.notify_one();
}

bool SealQueue::pop(SealedTimestep& out) {
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_pop_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return false;
    }
    out = std::move(items_.front());
    items_.pop_front();
    depth = items_.size();
  }
  MetricsRegistry::global()
      .gauge("stream.seal_queue_depth")
      .set(static_cast<std::int64_t>(depth));
  cv_push_.notify_one();
  return true;
}

void SealQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_push_.notify_all();
  cv_pop_.notify_all();
}

std::size_t SealQueue::maxDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_;
}

// ---------------------------------------------------------------------------
// StreamIngestor
// ---------------------------------------------------------------------------

StreamIngestor::StreamIngestor(GraphTemplatePtr tmpl,
                               const PartitionedGraph& pg, std::int64_t t0,
                               std::int64_t delta, SealQueue& queue,
                               IngestorOptions options)
    : tmpl_(tmpl),
      pg_(pg),
      queue_(queue),
      options_(options),
      builder_(std::move(tmpl), t0, delta, options.first_timestep),
      open_since_ns_(steadyNowNs()) {
  TSG_CHECK_MSG(options_.planned_timesteps > 0,
                "planned_timesteps must be positive");
}

void StreamIngestor::sealOpen(bool size_triggered) {
  auto sealed = builder_.seal();
  SealedTimestep item;
  item.timestep = sealed.instance.timestep();
  item.subgraph_dirty.assign(pg_.numSubgraphs(), 0);
  for (const VertexIndex v : sealed.dirty_vertices) {
    item.subgraph_dirty[pg_.subgraphOfVertex(v)] = 1;
  }
  for (const EdgeIndex e : sealed.dirty_edges) {
    // An edge-cell change dirties both endpoint subgraphs: edge values are
    // readable from whichever side owns the slot, so stay conservative.
    item.subgraph_dirty[pg_.subgraphOfVertex(tmpl_->edgeSrc(e))] = 1;
    item.subgraph_dirty[pg_.subgraphOfVertex(tmpl_->edgeDst(e))] = 1;
  }
  item.instance = std::move(sealed.instance);

  auto& registry = MetricsRegistry::global();
  registry.counter("stream.sealed_timesteps").increment();
  registry.histogram("stream.seal_lag_ns")
      .record(static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, steadyNowNs() - open_since_ns_)));
  ++sealed_timesteps_;
  last_seal_size_triggered_ = size_triggered;

  queue_.push(std::move(item));  // blocks when full: backpressure
  open_since_ns_ = steadyNowNs();
}

Status StreamIngestor::run(EventSource& source) {
  auto& registry = MetricsRegistry::global();
  const auto planned =
      static_cast<std::uint64_t>(options_.planned_timesteps);
  const Timestep horizon =
      options_.first_timestep + options_.planned_timesteps;
  Status result = Status::ok();
  GraphEvent ev;
  while (sealed_timesteps_ < planned) {
    auto poll = source.next(ev);
    if (!poll.isOk()) {
      result = poll.status();
      break;
    }
    if (poll.value() == Poll::kEnd) {
      break;
    }
    ++events_ingested_;
    registry.counter("stream.events_ingested").increment();
    const Timestep et = builder_.timestepOf(ev.timestamp);
    if (et >= horizon) {
      break;  // beyond the planned window: the stream is done for this run
    }
    if (et < builder_.openTimestep()) {
      // Roll-forward semantics after a size-triggered seal: stragglers of
      // the force-sealed window land in the next open timestep. Anything
      // older is late and dropped.
      if (!(last_seal_size_triggered_ &&
            et == builder_.openTimestep() - 1)) {
        ++late_events_;
        registry.counter("stream.late_events").increment();
        continue;
      }
    } else {
      // Watermark: an event in a later window seals everything before it
      // (intermediate timesteps become carried copies).
      while (builder_.openTimestep() < et) {
        sealOpen(/*size_triggered=*/false);
      }
    }
    const Status staged = builder_.stage(ev);
    if (!staged.isOk()) {
      result = staged;
      break;
    }
    if (options_.max_staged_cells > 0 &&
        builder_.stagedCells() >= options_.max_staged_cells &&
        sealed_timesteps_ + 1 < planned) {
      sealOpen(/*size_triggered=*/true);
    }
  }
  if (result.isOk()) {
    // End of source: pad to the planned horizon with carried copies so the
    // streamed run covers exactly the batch horizon.
    while (sealed_timesteps_ < planned) {
      sealOpen(/*size_triggered=*/false);
    }
  }
  // On error nothing staged is sealed — the open timestep's partial state
  // dies with the builder, and the closed queue unblocks the engine.
  queue_.close();
  return result;
}

// ---------------------------------------------------------------------------
// StreamingInstanceProvider
// ---------------------------------------------------------------------------

StreamingInstanceProvider::StreamingInstanceProvider(
    const PartitionedGraph& pg, GraphTemplatePtr tmpl,
    std::size_t planned_timesteps, std::int64_t t0, std::int64_t delta,
    SealQueue& queue)
    : pg_(pg),
      tmpl_(std::move(tmpl)),
      planned_(planned_timesteps),
      t0_(t0),
      delta_(delta),
      queue_(queue),
      load_ns_(pg.numPartitions(), 0) {
  TSG_CHECK(tmpl_ != nullptr);
}

const PartitionInstanceData& StreamingInstanceProvider::instanceFor(
    PartitionId p, Timestep t) {
  TSG_CHECK_MSG(t >= 0 &&
                    static_cast<std::size_t>(t) < materialized_.size(),
                "instanceFor before awaitTimestep sealed timestep " +
                    std::to_string(t));
  return materialized_[static_cast<std::size_t>(t)]->parts[p];
}

std::int64_t StreamingInstanceProvider::takeLoadNs(PartitionId p) {
  return std::exchange(load_ns_[p], 0);
}

bool StreamingInstanceProvider::awaitTimestep(Timestep t) {
  TSG_CHECK(t >= 0);
  while (materialized_.size() <= static_cast<std::size_t>(t)) {
    SealedTimestep sealed;
    if (!queue_.pop(sealed)) {
      break;  // stream ended (or aborted) before t
    }
    // The ingestor seals in timestep order from 0; the provider's dense
    // vector indexing depends on it.
    TSG_CHECK_MSG(static_cast<std::size_t>(sealed.timestep) ==
                      materialized_.size(),
                  "seal queue delivered timesteps out of order");
    auto mat = std::make_unique<MaterializedTimestep>();
    mat->subgraph_dirty = std::move(sealed.subgraph_dirty);
    mat->parts.reserve(pg_.numPartitions());
    for (PartitionId p = 0; p < pg_.numPartitions(); ++p) {
      const std::int64_t start = steadyNowNs();
      mat->parts.push_back(
          gatherPartitionInstance(pg_, p, sealed.instance));
      load_ns_[p] += steadyNowNs() - start;
    }
    mat->instance = std::move(sealed.instance);
    materialized_.push_back(std::move(mat));
  }
  return materialized_.size() > static_cast<std::size_t>(t);
}

bool StreamingInstanceProvider::subgraphDirty(Timestep t,
                                              SubgraphId sg) const {
  if (t < 0 || static_cast<std::size_t>(t) >= materialized_.size()) {
    return true;  // conservative: unknown timesteps are dirty
  }
  if (t == 0) {
    return true;  // no previous timestep to be clean against
  }
  const auto& dirty = materialized_[static_cast<std::size_t>(t)]->subgraph_dirty;
  return sg >= dirty.size() || dirty[sg] != 0;
}

const GraphInstance& StreamingInstanceProvider::sealedInstance(
    Timestep t) const {
  TSG_CHECK(t >= 0 && static_cast<std::size_t>(t) < materialized_.size());
  return materialized_[static_cast<std::size_t>(t)]->instance;
}

// ---------------------------------------------------------------------------
// IngestThread
// ---------------------------------------------------------------------------

IngestThread::IngestThread(StreamIngestor& ingestor, EventSource& source)
    : thread_([this, &ingestor, &source] {  // NOLINT(tsg-naked-thread)
        status_ = ingestor.run(source);
      }) {}

Status IngestThread::join() {
  if (!joined_) {
    thread_.join();
    joined_ = true;
  }
  return status_;
}

}  // namespace stream
}  // namespace tsg
