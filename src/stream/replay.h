// Replay helpers — bridges between batch collections and event streams.
//
// eventsFromCollection turns a TimeSeriesCollection into the event stream
// that, ingested under carry-forward semantics, reproduces each instance
// exactly: instance t is diffed against t-1 (t=0 against the zero/empty
// instance) and every changed cell becomes one event stamped with the
// instance's timestamp. This is how tsgcli streams a generated dataset and
// how the equivalence tests get a ground-truth stream for any collection.
//
// assembleInstance inverts gatherPartitionInstance: it scatters every
// partition's slice of a provider-served timestep back into one full
// GraphInstance (digests, output comparison).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "gofs/instance_provider.h"
#include "graph/collection.h"
#include "partition/partitioned_graph.h"
#include "stream/event.h"

namespace tsg {
namespace stream {

// Per-cell diff of consecutive instances, in deterministic (timestep,
// target, attr, index) order. Shuffling within one timestep must not change
// what the ingestor seals (the property the stream tests exercise).
std::vector<GraphEvent> eventsFromCollection(const TimeSeriesCollection& coll);

// Writes events as a framed file (stream/event.h wire format), with a
// trailing end-of-stream frame when `end_marker` is set.
Status writeEventFile(const std::string& path,
                      const std::vector<GraphEvent>& events,
                      bool end_marker = true);

// Reassembles the full instance for timestep t from the per-partition
// slices served by `provider`. The provider must already have timestep t
// available for every partition.
GraphInstance assembleInstance(const PartitionedGraph& pg,
                               const GraphTemplate& tmpl,
                               InstanceProvider& provider, Timestep t);

}  // namespace stream
}  // namespace tsg
