#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "common/perturb.h"
#include "common/status.h"

namespace tsg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) {
      num_threads = 1;
    }
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  TSG_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    TSG_CHECK_MSG(!shutting_down_, "submit after shutdown");
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // One chunked task per worker keeps queue churn low for large n.
  const std::size_t workers = threads_.size();
  std::atomic<std::size_t> next{0};
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8));
  std::atomic<std::size_t> done_tasks{0};
  const std::size_t num_tasks = std::min(workers, n);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  // Determinism-harness hook: under schedule perturbation, dispatch indices
  // in a seeded shuffled order instead of 0..n-1 so each run assigns work
  // to workers differently. Empty order = identity (the normal path).
  std::vector<std::size_t> order;
  if (check::perturbEnabled()) {
    order.resize(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [](std::size_t a, std::size_t b) {
      const auto ra = check::perturbRank(a);
      const auto rb = check::perturbRank(b);
      return ra != rb ? ra < rb : a < b;
    });
  }
  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([&] {
      while (true) {
        const std::size_t start = next.fetch_add(chunk);
        if (start >= n) {
          break;
        }
        const std::size_t end = std::min(n, start + chunk);
        for (std::size_t i = start; i < end; ++i) {
          fn(order.empty() ? i : order[i]);
        }
      }
      if (done_tasks.fetch_add(1) + 1 == num_tasks) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done_tasks.load() == num_tasks; });
}

void ThreadPool::parallelForStealing(std::size_t n,
                                     const std::function<void(std::size_t)>& fn,
                                     std::size_t* stolen_out) {
  if (n == 0) {
    if (stolen_out != nullptr) {
      *stolen_out = 0;
    }
    return;
  }
  const std::size_t num_tasks = std::min(threads_.size(), n);
  // Deal indices round-robin; under schedule perturbation the deal order is
  // shuffled (same hook as parallelFor) so runs differ in deque layout.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (check::perturbEnabled()) {
    std::sort(order.begin(), order.end(), [](std::size_t a, std::size_t b) {
      const auto ra = check::perturbRank(a);
      const auto rb = check::perturbRank(b);
      return ra != rb ? ra < rb : a < b;
    });
  }
  std::vector<StealDeque<std::size_t>> deques(num_tasks);
  for (std::size_t i = 0; i < n; ++i) {
    deques[i % num_tasks].pushBottom(order[i]);
  }
  std::atomic<std::size_t> stolen{0};
  std::atomic<std::size_t> done_tasks{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([&, t] {
      while (true) {
        std::optional<std::size_t> idx = deques[t].popBottom();
        if (!idx) {
          // Own deque dry: scan the others top-first (oldest work).
          for (std::size_t v = 1; v < num_tasks && !idx; ++v) {
            idx = deques[(t + v) % num_tasks].stealTop();
          }
          if (!idx) {
            break;
          }
          stolen.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(steal stat; read after the pool quiesces)
        }
        fn(*idx);
      }
      if (done_tasks.fetch_add(1) + 1 == num_tasks) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done_tasks.load() == num_tasks; });
  }
  if (stolen_out != nullptr) {
    *stolen_out = stolen.load();
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace tsg
