#include "common/serialize.h"

#include <cstdio>

namespace tsg {

void BinaryWriter::writeVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

Status BinaryReader::readU8(std::uint8_t& out) {
  if (remaining() < 1) {
    return Status::corruptData("u8 read past end of buffer");
  }
  out = data_[pos_++];
  return Status::ok();
}

Status BinaryReader::readVarint(std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) {
      return Status::corruptData("varint truncated");
    }
    if (shift >= 64) {
      return Status::corruptData("varint too long");
    }
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  out = v;
  return Status::ok();
}

Status BinaryReader::readString(std::string& out) {
  std::uint64_t n = 0;
  TSG_RETURN_IF_ERROR(readVarint(n));
  if (remaining() < n) {
    return Status::corruptData("string truncated");
  }
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_),
             static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return Status::ok();
}

Status BinaryReader::readStringVector(std::vector<std::string>& out) {
  std::uint64_t n = 0;
  TSG_RETURN_IF_ERROR(readVarint(n));
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s;
    TSG_RETURN_IF_ERROR(readString(s));
    out.push_back(std::move(s));
  }
  return Status::ok();
}

Status writeFileBytes(const std::string& path,
                      std::span<const std::uint8_t> data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::ioError("cannot open for write: " + path);
  }
  std::size_t written = 0;
  if (!data.empty()) {
    written = std::fwrite(data.data(), 1, data.size(), f);
  }
  const bool close_ok = std::fclose(f) == 0;
  if (written != data.size() || !close_ok) {
    return Status::ioError("short write: " + path);
  }
  return Status::ok();
}

Result<std::vector<std::uint8_t>> readFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::ioError("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::ioError("cannot stat: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  std::size_t got = 0;
  if (size > 0) {
    got = std::fread(data.data(), 1, data.size(), f);
  }
  std::fclose(f);
  if (got != data.size()) {
    return Status::ioError("short read: " + path);
  }
  return data;
}

}  // namespace tsg
