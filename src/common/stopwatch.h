// Wall-clock timing utilities used by the runtime's metering.
#pragma once

#include <chrono>
#include <cstdint>

namespace tsg {

// Nanoseconds since an arbitrary steady epoch.
inline std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time consumed by the calling thread. Used for all per-partition
// "busy" metering: partition workers share cores (this host may have fewer
// cores than partitions), so wall time would charge a worker for time it
// spent descheduled while its peers ran. Falls back to the wall clock on
// platforms without a thread CPU clock.
std::int64_t threadCpuNowNs();

// Simple resettable stopwatch over the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(steadyNowNs()) {}

  void reset() { start_ns_ = steadyNowNs(); }

  [[nodiscard]] std::int64_t elapsedNs() const {
    return steadyNowNs() - start_ns_;
  }
  [[nodiscard]] double elapsedMs() const {
    return static_cast<double>(elapsedNs()) / 1e6;
  }
  [[nodiscard]] double elapsedSec() const {
    return static_cast<double>(elapsedNs()) / 1e9;
  }

 private:
  std::int64_t start_ns_;
};

// Accumulates elapsed wall time into a caller-owned counter on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::int64_t& accumulator_ns)
      : accumulator_ns_(accumulator_ns), start_ns_(steadyNowNs()) {}
  ~ScopedTimer() { accumulator_ns_ += steadyNowNs() - start_ns_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::int64_t& accumulator_ns_;
  std::int64_t start_ns_;
};

// Like ScopedTimer but accumulates the calling thread's CPU time; used for
// the runtime's per-partition send/load meters (see threadCpuNowNs).
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(std::int64_t& accumulator_ns)
      : accumulator_ns_(accumulator_ns), start_ns_(threadCpuNowNs()) {}
  ~ScopedCpuTimer() { accumulator_ns_ += threadCpuNowNs() - start_ns_; }

  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  std::int64_t& accumulator_ns_;
  std::int64_t start_ns_;
};

// Formats a nanosecond duration as a short human string ("1.23 s", "45 ms").
// Defined in stopwatch.cc.
class Stopwatch;
std::int64_t msToNs(double ms);
double nsToMs(std::int64_t ns);
double nsToSec(std::int64_t ns);

}  // namespace tsg
