#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace tsg {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);  // tsg:mo(level gate; readers tolerate staleness)
}

LogLevel logLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));  // tsg:mo(level gate; readers tolerate staleness)
}

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

bool parseLogLevel(std::string_view text, LogLevel& out) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "d") {
    out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "i") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "w") {
    out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "e") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel initLogLevelFromEnv() {
  const char* env = std::getenv("TSG_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    LogLevel level = LogLevel::kInfo;
    if (parseLogLevel(env, level)) {
      setLogLevel(level);
    } else {
      std::fprintf(stderr,
                   "[W log] ignoring unknown TSG_LOG_LEVEL='%s' "
                   "(expected debug|info|warn|error)\n",
                   env);
    }
  }
  return logLevel();
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),  // tsg:mo(level gate; readers tolerate staleness)
      level_(level) {
  if (enabled_) {
    // Only the basename keeps lines short.
    std::string_view path(file);
    const auto slash = path.find_last_of('/');
    if (slash != std::string_view::npos) {
      path.remove_prefix(slash + 1);
    }
    stream_ << "[" << levelTag(level_) << " " << path << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (!enabled_) {
    return;
  }
  stream_ << '\n';
  const std::string text = stream_.str();
  std::lock_guard lock(g_log_mutex);
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

}  // namespace detail
}  // namespace tsg
