#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tsg {

void appendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
}

void JsonWriter::open(char bracket) {
  separate();
  out_ += bracket;
  has_element_.push_back(false);
}

void JsonWriter::close(char bracket) {
  has_element_.pop_back();
  out_ += bracket;
}

void JsonWriter::key(std::string_view name) {
  separate();
  out_ += '"';
  appendJsonEscaped(out_, name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ += '"';
  appendJsonEscaped(out_, text);
  out_ += '"';
}

void JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::rawNumber(std::string_view number) {
  separate();
  out_ += number;
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
}

// ---------------------------------------------------------------------------
// JsonValue — recursive-descent parser.
// ---------------------------------------------------------------------------

// Local analog of TSG_RETURN_IF_ERROR for the parser's Status plumbing.
#define TSG_JSON_RETURN_IF_ERROR(expr)     \
  do {                                     \
    ::tsg::Status s_ = (expr);             \
    if (!s_.isOk()) {                      \
      return s_;                           \
    }                                      \
  } while (0)

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parseDocument() {
    JsonValue value;
    TSG_JSON_RETURN_IF_ERROR(parseValue(value, /*depth=*/0));
    skipWhitespace();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status error(const std::string& what) const {
    return Status::corruptData(what + " at byte " + std::to_string(pos_));
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return error("invalid literal");
    }
    pos_ += literal.size();
    return Status::ok();
  }

  Status parseString(std::string& out) {
    if (!consume('"')) {
      return error("expected '\"'");
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::ok();
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return error("invalid escape character");
      }
    }
    return error("unterminated string");
  }

  Status parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    bool is_integer = true;
    consume('-');
    while (pos_ < text_.size() &&
           text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      return error("invalid number");
    }
    out.kind_ = JsonValue::Kind::kNumber;
    errno = 0;
    char* end = nullptr;
    out.double_ = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return error("invalid number");
    }
    if (is_integer) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      out.int_ = (errno == ERANGE) ? static_cast<std::int64_t>(out.double_)
                                   : static_cast<std::int64_t>(v);
    } else {
      out.int_ = static_cast<std::int64_t>(out.double_);
    }
    return Status::ok();
  }

  Status parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return error("JSON nesting too deep");
    }
    skipWhitespace();
    if (pos_ >= text_.size()) {
      return error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.kind_ = JsonValue::Kind::kObject;
        skipWhitespace();
        if (consume('}')) {
          return Status::ok();
        }
        while (true) {
          skipWhitespace();
          std::string key;
          TSG_JSON_RETURN_IF_ERROR(parseString(key));
          skipWhitespace();
          if (!consume(':')) {
            return error("expected ':'");
          }
          JsonValue member;
          TSG_JSON_RETURN_IF_ERROR(parseValue(member, depth + 1));
          out.object_[std::move(key)] = std::move(member);
          skipWhitespace();
          if (consume(',')) {
            continue;
          }
          if (consume('}')) {
            return Status::ok();
          }
          return error("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out.kind_ = JsonValue::Kind::kArray;
        skipWhitespace();
        if (consume(']')) {
          return Status::ok();
        }
        while (true) {
          JsonValue element;
          TSG_JSON_RETURN_IF_ERROR(parseValue(element, depth + 1));
          out.array_.push_back(std::move(element));
          skipWhitespace();
          if (consume(',')) {
            continue;
          }
          if (consume(']')) {
            return Status::ok();
          }
          return error("expected ',' or ']'");
        }
      }
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parseString(out.string_);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return expectLiteral("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return expectLiteral("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return expectLiteral("null");
      default:
        return parseNumber(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

#undef TSG_JSON_RETURN_IF_ERROR

Result<JsonValue> JsonValue::parse(std::string_view text) {
  JsonParser parser(text);
  return parser.parseDocument();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::int64_t JsonValue::intOr(std::string_view key,
                              std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->intValue() : fallback;
}

double JsonValue::doubleOr(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->doubleValue() : fallback;
}

std::string JsonValue::stringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->stringValue()
                                       : std::move(fallback);
}

}  // namespace tsg
