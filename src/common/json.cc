#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace tsg {

void appendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
}

void JsonWriter::open(char bracket) {
  separate();
  out_ += bracket;
  has_element_.push_back(false);
}

void JsonWriter::close(char bracket) {
  has_element_.pop_back();
  out_ += bracket;
}

void JsonWriter::key(std::string_view name) {
  separate();
  out_ += '"';
  appendJsonEscaped(out_, name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ += '"';
  appendJsonEscaped(out_, text);
  out_ += '"';
}

void JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::rawNumber(std::string_view number) {
  separate();
  out_ += number;
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
}

}  // namespace tsg
