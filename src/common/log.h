// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage: TSG_LOG(Info) << "loaded " << n << " slices";
// The stream is buffered per-statement and flushed atomically, so lines from
// concurrent partition workers never interleave.
#pragma once

#include <sstream>
#include <string_view>

namespace tsg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are compiled but skipped at runtime.
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tsg

#define TSG_LOG(severity)                                              \
  ::tsg::detail::LogLine(::tsg::LogLevel::k##severity, __FILE__, __LINE__)
