// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage: TSG_LOG(Info) << "loaded " << n << " slices";
// The stream is buffered per-statement and flushed atomically, so lines from
// concurrent partition workers never interleave.
#pragma once

#include <sstream>
#include <string_view>

namespace tsg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are compiled but skipped at runtime.
void setLogLevel(LogLevel level);
LogLevel logLevel();

// Short lowercase name ("debug", "info", "warn", "error").
const char* logLevelName(LogLevel level);

// Parses "debug"/"info"/"warn"/"error" (case-insensitive; "warning" and
// single-letter forms accepted). Returns false on unknown input.
bool parseLogLevel(std::string_view text, LogLevel& out);

// Applies the TSG_LOG_LEVEL environment variable (if set) to the global
// threshold and returns the effective level. Unknown values are reported on
// stderr and ignored. Entry points (tsgcli, bench binaries) call this once
// at startup so verbosity is controllable without recompiling.
LogLevel initLogLevelFromEnv();

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tsg

#define TSG_LOG(severity)                                              \
  ::tsg::detail::LogLine(::tsg::LogLevel::k##severity, __FILE__, __LINE__)
