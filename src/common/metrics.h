// MetricsRegistry — process-wide counters, gauges and histograms for the
// TI-BSP stack.
//
// A metric is (name, optional partition label). Counters accumulate
// monotonically (messages delivered, packs loaded, barrier-wait ns); gauges
// hold the latest value (e.g. cached pack index); histograms capture value
// distributions (superstep durations, delivered-batch sizes) in logarithmic
// buckets. Cells are atomics, so any thread may bump a metric it holds a
// handle to; registration (name lookup) takes a mutex, so hot paths look a
// handle up once and keep it.
//
// The registry is process-wide and outlives individual runs: per-run
// accounting is a snapshot() before and after the run, diffed with
// snapshotDelta() / histogramDelta() (see TiBspEngine::run, which attaches
// the deltas to RunStats). Two engines running concurrently in one process
// share the registry, so their deltas overlap — acceptable for a substrate
// whose engines run one at a time per process.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <tuple>
#include <string_view>
#include <vector>

namespace tsg {

// Log-bucketed value distribution. Bucket 0 holds the value 0; bucket i>0
// holds [2^(i-1), 2^i). record() is lock-free (relaxed atomic adds plus a
// CAS loop for the max), so workers can feed it from the superstep hot path;
// readers take a consistent-enough view via MetricsRegistry snapshots
// (per-bucket counts are exact, cross-bucket skew is bounded by in-flight
// record() calls, which is fine for the post-run reporting this backs).
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // 0 plus one per bit width

  static int bucketOf(std::uint64_t value) {
    return static_cast<int>(std::bit_width(value));
  }
  // Inclusive upper bound of a bucket (the value reported for quantiles).
  static std::uint64_t bucketUpperBound(int bucket) {
    return bucket >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << bucket) - 1;
  }

  // tsg:hot — instrumentation sites call this from compute inner loops.
  void record(std::uint64_t value) {
    buckets_[static_cast<std::size_t>(bucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);  // tsg:mo(stat counter; totals read at scrape time)
    count_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(stat counter; totals read at scrape time)
    sum_.fetch_add(value, std::memory_order_relaxed);  // tsg:mo(stat counter; totals read at scrape time)
    std::uint64_t seen = max_.load(std::memory_order_relaxed);  // tsg:mo(monotone max; the CAS loop needs no ordering)
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {  // tsg:mo(monotone max; the CAS loop needs no ordering)
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);  // tsg:mo(stat read; a scrape tolerates staleness)
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);  // tsg:mo(stat read; a scrape tolerates staleness)
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);  // tsg:mo(stat read; a scrape tolerates staleness)
  }

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  // Partition label meaning "not partition-scoped".
  static constexpr std::int32_t kNoPartition = -1;

  class Counter {
   public:
    void add(std::uint64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);  // tsg:mo(stat counter; totals read at scrape time)
    }
    void increment() { add(1); }
    [[nodiscard]] std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);  // tsg:mo(stat read; a scrape tolerates staleness)
    }

   private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> value_{0};
  };

  class Gauge {
   public:
    void set(std::int64_t value) {
      value_.store(value, std::memory_order_relaxed);  // tsg:mo(gauge value; last write wins, no payload)
      touches_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(gauge value; last write wins, no payload)
    }
    // Relaxed read-modify-write for gauges that track a live level (queue
    // depths, in-flight messages) from many threads at once.
    void add(std::int64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);  // tsg:mo(gauge value; last write wins, no payload)
      touches_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(gauge value; last write wins, no payload)
    }
    [[nodiscard]] std::int64_t value() const {
      return value_.load(std::memory_order_relaxed);  // tsg:mo(stat read; a scrape tolerates staleness)
    }
    // Monotonic count of set()/add() calls. snapshotDelta() compares it
    // across two snapshots to tell "this gauge moved during the window"
    // apart from "a stale value left over from an earlier run" — value
    // comparison alone cannot (a gauge may be rewritten to the same value,
    // or return to it).
    [[nodiscard]] std::uint64_t touches() const {
      return touches_.load(std::memory_order_relaxed);  // tsg:mo(stat read; a scrape tolerates staleness)
    }

   private:
    friend class MetricsRegistry;
    std::atomic<std::int64_t> value_{0};
    std::atomic<std::uint64_t> touches_{0};
  };

  // Implementation detail (one registered metric); public only so the
  // out-of-line definition and its helpers can name it.
  struct Cell;

  // The process-wide registry every subsystem feeds.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the cell. The returned reference stays valid for the
  // registry's lifetime (reset() zeroes values but keeps cells).
  Counter& counter(std::string_view name,
                   std::int32_t partition = kNoPartition);
  Gauge& gauge(std::string_view name, std::int32_t partition = kNoPartition);
  Histogram& histogram(std::string_view name,
                       std::int32_t partition = kNoPartition);

  // One metric value at snapshot time.
  struct Point {
    std::string name;
    std::int32_t partition = kNoPartition;
    bool is_gauge = false;
    std::int64_t value = 0;
    // Gauge touch count at snapshot time (0 for counters); bookkeeping for
    // snapshotDelta's stale-gauge filter, excluded from equality.
    std::uint64_t touches = 0;
    friend bool operator==(const Point& a, const Point& b) {
      return std::tie(a.name, a.partition, a.is_gauge, a.value) ==
             std::tie(b.name, b.partition, b.is_gauge, b.value);
    }
  };
  using Snapshot = std::vector<Point>;  // sorted by (name, partition)

  [[nodiscard]] Snapshot snapshot() const;

  // One histogram's state at snapshot time. Quantiles are resolved to the
  // inclusive upper bound of the bucket containing the requested rank, so
  // they are upper estimates within a factor of 2 — plenty for the
  // straggler/latency reporting this feeds.
  struct HistogramSnapshot {
    std::string name;
    std::int32_t partition = kNoPartition;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};

    // q in [0, 1]; returns 0 for an empty histogram.
    [[nodiscard]] std::uint64_t quantile(double q) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    // Accumulates `other` into this snapshot (same metric from another
    // source, e.g. per-partition shards folded into a run total).
    void merge(const HistogramSnapshot& other);

    friend bool operator==(const HistogramSnapshot&,
                           const HistogramSnapshot&) = default;
  };
  using HistogramSnapshots =
      std::vector<HistogramSnapshot>;  // sorted by (name, partition)

  [[nodiscard]] HistogramSnapshots histogramSnapshot() const;

  // Zeroes every cell (registrations and handles stay valid).
  void reset();

 private:
  // `kind` is Cell::Kind cast to int (Cell is only defined in the .cc).
  Cell& findOrCreateCell(std::string_view name, std::int32_t partition,
                         int kind);

  mutable std::mutex mutex_;
  std::vector<Cell*> cells_;  // owned; freed in the destructor
};

// Per-run view: counters report after-minus-before; gauges report the
// `after` value. Points absent from `before` are treated as starting at 0;
// zero-valued counter deltas are dropped, and gauges whose touch count did
// not move between the snapshots are dropped too (they are stale residue
// from outside the run window, e.g. another engine in the same process).
MetricsRegistry::Snapshot snapshotDelta(
    const MetricsRegistry::Snapshot& before,
    const MetricsRegistry::Snapshot& after);

// Per-run view of histograms: bucket counts, count and sum subtract
// `before`; max keeps the `after` value (the true per-run max is not
// recoverable from two snapshots — documented approximation). Histograms
// whose delta count is zero are dropped.
MetricsRegistry::HistogramSnapshots histogramDelta(
    const MetricsRegistry::HistogramSnapshots& before,
    const MetricsRegistry::HistogramSnapshots& after);

}  // namespace tsg
