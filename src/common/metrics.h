// MetricsRegistry — process-wide counters and gauges for the TI-BSP stack.
//
// A metric is (name, optional partition label). Counters accumulate
// monotonically (messages delivered, packs loaded, barrier-wait ns); gauges
// hold the latest value (e.g. cached pack index). Cells are atomics, so any
// thread may bump a metric it holds a handle to; registration (name lookup)
// takes a mutex, so hot paths look a handle up once and keep it.
//
// The registry is process-wide and outlives individual runs: per-run
// accounting is a snapshot() before and after the run, diffed with
// snapshotDelta() (see TiBspEngine::run, which attaches the delta to
// RunStats). Two engines running concurrently in one process share the
// registry, so their deltas overlap — acceptable for a substrate whose
// engines run one at a time per process.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tsg {

class MetricsRegistry {
 public:
  // Partition label meaning "not partition-scoped".
  static constexpr std::int32_t kNoPartition = -1;

  class Counter {
   public:
    void add(std::uint64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    void increment() { add(1); }
    [[nodiscard]] std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> value_{0};
  };

  class Gauge {
   public:
    void set(std::int64_t value) {
      value_.store(value, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    std::atomic<std::int64_t> value_{0};
  };

  // Implementation detail (one registered metric); public only so the
  // out-of-line definition and its helpers can name it.
  struct Cell;

  // The process-wide registry every subsystem feeds.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the cell. The returned reference stays valid for the
  // registry's lifetime (reset() zeroes values but keeps cells).
  Counter& counter(std::string_view name,
                   std::int32_t partition = kNoPartition);
  Gauge& gauge(std::string_view name, std::int32_t partition = kNoPartition);

  // One metric value at snapshot time.
  struct Point {
    std::string name;
    std::int32_t partition = kNoPartition;
    bool is_gauge = false;
    std::int64_t value = 0;
    friend bool operator==(const Point&, const Point&) = default;
  };
  using Snapshot = std::vector<Point>;  // sorted by (name, partition)

  [[nodiscard]] Snapshot snapshot() const;

  // Zeroes every cell (registrations and handles stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<Cell*> cells_;  // owned; freed in the destructor
};

// Per-run view: counters report after-minus-before; gauges report the
// `after` value. Points absent from `before` are treated as starting at 0;
// zero-valued counter deltas are dropped.
MetricsRegistry::Snapshot snapshotDelta(
    const MetricsRegistry::Snapshot& before,
    const MetricsRegistry::Snapshot& after);

}  // namespace tsg
