#include "common/prof_hooks.h"

#include "common/status.h"

namespace tsg {
namespace prof {

namespace prof_detail {
std::atomic<bool> g_armed{false};
Hooks g_hooks;
}  // namespace prof_detail

void install(const Hooks& hooks) {
  TSG_CHECK(hooks.wait_caused != nullptr);
  TSG_CHECK(hooks.steal_victim != nullptr);
  TSG_CHECK(hooks.resident_slice != nullptr);
  prof_detail::g_hooks = hooks;
  // tsg:mo(release publishes the table writes above to any thread that
  // subsequently observes armed() == true)
  prof_detail::g_armed.store(true, std::memory_order_release);
}

void uninstall() {
  // The table is deliberately left in place: a worker that loaded
  // armed() == true just before this store may still call through it, and
  // the previously installed callbacks (Profiler::global() trampolines, a
  // leaked singleton) stay valid forever. Only the gate closes.
  // tsg:mo(gate close; racing callers fall through to the still-valid table)
  prof_detail::g_armed.store(false, std::memory_order_release);
}

}  // namespace prof
}  // namespace tsg
