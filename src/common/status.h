// Lightweight status / result types used across the tsgraph library.
//
// The library avoids exceptions on hot paths (per-superstep, per-message
// code); fallible construction and I/O return Status or Result<T>.
// Programming errors (contract violations) use TSG_CHECK which aborts.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace tsg {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kCorruptData,
  kUnimplemented,
};

// Human-readable name of an error code ("InvalidArgument", ...).
std::string_view errorCodeName(ErrorCode code);

// A status is either OK or carries an error code plus a message.
// Cheap to copy in the OK case (empty string).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalidArgument(std::string msg) {
    return {ErrorCode::kInvalidArgument, std::move(msg)};
  }
  static Status notFound(std::string msg) {
    return {ErrorCode::kNotFound, std::move(msg)};
  }
  static Status alreadyExists(std::string msg) {
    return {ErrorCode::kAlreadyExists, std::move(msg)};
  }
  static Status outOfRange(std::string msg) {
    return {ErrorCode::kOutOfRange, std::move(msg)};
  }
  static Status failedPrecondition(std::string msg) {
    return {ErrorCode::kFailedPrecondition, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }
  static Status ioError(std::string msg) {
    return {ErrorCode::kIoError, std::move(msg)};
  }
  static Status corruptData(std::string msg) {
    return {ErrorCode::kCorruptData, std::move(msg)};
  }
  static Status unimplemented(std::string msg) {
    return {ErrorCode::kUnimplemented, std::move(msg)};
  }

  [[nodiscard]] bool isOk() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // "Ok" or "<CodeName>: <message>".
  [[nodiscard]] std::string toString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Result<T>: either a value or an error Status. A minimal std::expected
// stand-in (libstdc++ 12 does not ship <expected>).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    ensureError();
  }

  [[nodiscard]] bool isOk() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    checkHasValue();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    checkHasValue();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    checkHasValue();
    return std::move(*value_);
  }

  [[nodiscard]] T valueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void ensureError();
  void checkHasValue() const;

  std::optional<T> value_;
  Status status_;
};

namespace detail {
[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace detail

template <typename T>
void Result<T>::ensureError() {
  if (status_.isOk()) {
    detail::checkFailed(__FILE__, __LINE__, "Result(Status)",
                        "constructed from an OK status");
  }
}

template <typename T>
void Result<T>::checkHasValue() const {
  if (!value_.has_value()) {
    detail::checkFailed(__FILE__, __LINE__, "Result::value()",
                        status_.toString());
  }
}

// Contract check: aborts with file/line on failure. Active in all builds —
// the invariants it protects (index bounds, BSP protocol state) are cheap
// relative to the work they guard.
#define TSG_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::tsg::detail::checkFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                  \
  } while (0)

#define TSG_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::tsg::detail::checkFailed(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                  \
  } while (0)

// Propagate a non-OK status from a Status-returning expression.
#define TSG_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::tsg::Status tsg_status_ = (expr);      \
    if (!tsg_status_.isOk()) {               \
      return tsg_status_;                    \
    }                                        \
  } while (0)

}  // namespace tsg
