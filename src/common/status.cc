#include "common/status.h"

#include <cstdio>

namespace tsg {

std::string_view errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kAlreadyExists:
      return "AlreadyExists";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kFailedPrecondition:
      return "FailedPrecondition";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kIoError:
      return "IoError";
    case ErrorCode::kCorruptData:
      return "CorruptData";
    case ErrorCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::toString() const {
  if (isOk()) {
    return "Ok";
  }
  std::string out(errorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace detail {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "TSG_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace tsg
