// A fixed-size thread pool used for temporal concurrency in the TI-BSP
// engine (independent / eventually dependent patterns) and by generators.
//
// The BSP runtime itself does NOT use this pool: partition workers are
// long-lived dedicated threads (see runtime/cluster.h) because BSP metering
// needs a stable thread-per-partition mapping.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsg {

class ThreadPool {
 public:
  // num_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs as soon as a worker is free.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void waitIdle();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t numThreads() const { return threads_.size(); }

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace tsg
