// A fixed-size thread pool used for temporal concurrency in the TI-BSP
// engine (independent / eventually dependent patterns) and by generators.
//
// The BSP runtime itself does NOT use this pool: partition workers are
// long-lived dedicated threads (see runtime/cluster.h) because BSP metering
// needs a stable thread-per-partition mapping.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace tsg {

// A work-stealing deque: the owning worker pushes and pops at the bottom
// (LIFO, cache-warm), thieves steal from the top (FIFO, oldest task first —
// the one the owner is least likely to touch soon). Mutex-based: the
// scheduler's tasks are whole (partition, superstep) units, coarse enough
// that lock cost is noise next to task cost, and a mutex keeps the deque
// trivially correct under TSan.
template <typename T>
class StealDeque {
 public:
  void pushBottom(T item) {
    std::lock_guard lock(mutex_);
    items_.push_back(std::move(item));
  }

  // Owner-side pop (newest task).
  std::optional<T> popBottom() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.back());
    items_.pop_back();
    return item;
  }

  // Thief-side steal (oldest task).
  std::optional<T> stealTop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard lock(mutex_);
    return items_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  void clear() {
    std::lock_guard lock(mutex_);
    items_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

class ThreadPool {
 public:
  // num_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs as soon as a worker is free.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void waitIdle();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Work-stealing variant used by the async scheduler's timestep-overlap
  // path: indices are dealt round-robin into one StealDeque per worker
  // task; each task drains its own deque LIFO and then steals FIFO from
  // the others, so a straggling index never strands the rest of its deque.
  // `stolen_out`, when non-null, receives the number of indices executed
  // by a task other than the one they were dealt to.
  void parallelForStealing(std::size_t n,
                           const std::function<void(std::size_t)>& fn,
                           std::size_t* stolen_out = nullptr);

  [[nodiscard]] std::size_t numThreads() const { return threads_.size(); }

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace tsg
