#include "common/stopwatch.h"

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define TSG_HAVE_THREAD_CPUTIME 1
#endif

namespace tsg {

std::int64_t threadCpuNowNs() {
#if defined(TSG_HAVE_THREAD_CPUTIME)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return steadyNowNs();
}

std::int64_t msToNs(double ms) { return static_cast<std::int64_t>(ms * 1e6); }

double nsToMs(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

double nsToSec(std::int64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace tsg
