// Binary serialization used by the message bus and the GoFS slice codec.
//
// Format: little-endian fixed-width integers, varint for sizes, raw IEEE-754
// doubles. Readers are bounds-checked and return Status on truncation so a
// corrupt slice file can never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace tsg {

// Append-only encoder into an owned byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void writeU8(std::uint8_t v) { buffer_.push_back(v); }
  void writeU32(std::uint32_t v) { writeFixed(v); }
  void writeU64(std::uint64_t v) { writeFixed(v); }
  void writeI32(std::int32_t v) { writeFixed(static_cast<std::uint32_t>(v)); }
  void writeI64(std::int64_t v) { writeFixed(static_cast<std::uint64_t>(v)); }
  void writeDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    writeFixed(bits);
  }
  void writeBool(bool v) { writeU8(v ? 1 : 0); }

  // LEB128-style unsigned varint; used for all length prefixes.
  void writeVarint(std::uint64_t v);

  void writeString(std::string_view s) {
    writeVarint(s.size());
    writeBytes(s.data(), s.size());
  }

  void writeBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void writePodVector(const std::vector<T>& v) {
    writeVarint(v.size());
    if (!v.empty()) {
      writeBytes(v.data(), v.size() * sizeof(T));
    }
  }

  void writeStringVector(const std::vector<std::string>& v) {
    writeVarint(v.size());
    for (const auto& s : v) {
      writeString(s);
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> takeBuffer() {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  void clear() { buffer_.clear(); }

 private:
  template <typename T>
  void writeFixed(T v) {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buffer_;
};

// Bounds-checked decoder over a non-owned byte span.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  Status readU8(std::uint8_t& out);
  Status readU32(std::uint32_t& out) { return readFixed(out); }
  Status readU64(std::uint64_t& out) { return readFixed(out); }
  Status readI32(std::int32_t& out) {
    std::uint32_t raw = 0;
    TSG_RETURN_IF_ERROR(readFixed(raw));
    out = static_cast<std::int32_t>(raw);
    return Status::ok();
  }
  Status readI64(std::int64_t& out) {
    std::uint64_t raw = 0;
    TSG_RETURN_IF_ERROR(readFixed(raw));
    out = static_cast<std::int64_t>(raw);
    return Status::ok();
  }
  Status readDouble(double& out) {
    std::uint64_t bits = 0;
    TSG_RETURN_IF_ERROR(readFixed(bits));
    std::memcpy(&out, &bits, sizeof(out));
    return Status::ok();
  }
  Status readBool(bool& out) {
    std::uint8_t raw = 0;
    TSG_RETURN_IF_ERROR(readU8(raw));
    out = raw != 0;
    return Status::ok();
  }

  Status readVarint(std::uint64_t& out);
  Status readString(std::string& out);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Status readPodVector(std::vector<T>& out) {
    std::uint64_t n = 0;
    TSG_RETURN_IF_ERROR(readVarint(n));
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
    if (remaining() < bytes) {
      return Status::corruptData("pod vector truncated");
    }
    out.resize(static_cast<std::size_t>(n));
    if (bytes > 0) {
      std::memcpy(out.data(), data_.data() + pos_, bytes);
      pos_ += bytes;
    }
    return Status::ok();
  }

  Status readStringVector(std::vector<std::string>& out);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status readFixed(T& out) {
    static_assert(std::is_unsigned_v<T>);
    if (remaining() < sizeof(T)) {
      return Status::corruptData("fixed-width read past end of buffer");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    out = v;
    return Status::ok();
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Whole-file helpers (used by GoFS).
Status writeFileBytes(const std::string& path,
                      std::span<const std::uint8_t> data);
Result<std::vector<std::uint8_t>> readFileBytes(const std::string& path);

}  // namespace tsg
