#include "common/perturb.h"

#include "common/rng.h"

namespace tsg {
namespace check {

namespace perturb_detail {
std::atomic<bool> g_perturb_enabled{false};
std::atomic<std::uint64_t> g_perturb_seed{0};
}  // namespace perturb_detail

void setPerturbation(std::uint64_t seed) {
  perturb_detail::g_perturb_seed.store(seed, std::memory_order_relaxed);  // tsg:mo(seed store; the release on the enable flag publishes it)
  perturb_detail::g_perturb_enabled.store(true, std::memory_order_release);  // tsg:mo(release publishes the seed store above)
}

void clearPerturbation() {
  perturb_detail::g_perturb_enabled.store(false, std::memory_order_release);  // tsg:mo(disable gate; nothing to publish)
}

std::uint64_t perturbSeed() {
  return perturb_detail::g_perturb_seed.load(std::memory_order_relaxed);  // tsg:mo(seed is set at configuration time, before workers run)
}

std::uint64_t perturbDelayNs(std::uint64_t round, std::uint32_t partition,
                             std::uint64_t salt) {
  SplitMix64 mix(perturbSeed() ^ (round * 0x9E3779B97F4A7C15ULL) ^
                 (static_cast<std::uint64_t>(partition) << 32) ^ salt);
  // 0 .. ~200µs: large enough to reorder workers, small enough that a
  // perturbed run stays within a few × the unperturbed wall time.
  return mix.next() % 200'000;
}

std::uint64_t perturbRank(std::uint64_t index) {
  SplitMix64 mix(perturbSeed() ^ (index + 0x632BE59BD9B4E019ULL));
  return mix.next();
}

}  // namespace check
}  // namespace tsg
