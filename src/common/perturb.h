// Schedule perturbation — the determinism harness's lever on worker timing.
//
// BSP semantics promise that results do not depend on how workers are
// scheduled. The harness tests that promise by re-running the same job
// under N different perturbed schedules: when perturbation is enabled the
// Cluster staggers its workers' release from the round barrier and their
// arrival back at it with deterministic per-(seed, round, partition)
// delays — a seeded stand-in for "randomized barrier release order" — and
// the ThreadPool dispatches parallelFor indices in a seeded shuffled order
// instead of 0..n-1. Any output divergence between two seeds is a
// schedule-dependence bug (the class TSan cannot see, because nothing
// races — the program is simply order-sensitive).
//
// Cost when off: one relaxed load + branch at each hook site.
#pragma once

#include <atomic>
#include <cstdint>

namespace tsg {
namespace check {

namespace perturb_detail {
extern std::atomic<bool> g_perturb_enabled;
}  // namespace perturb_detail

inline bool perturbEnabled() {
  return perturb_detail::g_perturb_enabled.load(std::memory_order_relaxed);  // tsg:mo(gate read; perturbation is configured before workers start)
}

// Enables perturbation with the given seed (affects Cluster rounds and
// ThreadPool::parallelFor dispatch from the next round on).
void setPerturbation(std::uint64_t seed);
void clearPerturbation();
[[nodiscard]] std::uint64_t perturbSeed();

// Deterministic jitter for (round, partition) under the current seed, in
// nanoseconds (0 .. ~200µs). `salt` decorrelates the two hook points of a
// round (release vs barrier arrival).
[[nodiscard]] std::uint64_t perturbDelayNs(std::uint64_t round,
                                           std::uint32_t partition,
                                           std::uint64_t salt = 0);

// Deterministic permutation value used to shuffle dispatch order: a hash
// the scheduler sorts indices by.
[[nodiscard]] std::uint64_t perturbRank(std::uint64_t index);

}  // namespace check
}  // namespace tsg
