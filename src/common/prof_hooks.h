// ProfHooks — dependency-inverted profiler callbacks for the low layers.
//
// The scheduler (runtime/cluster) and the storage layer (gofs/dataset) sit
// below profile/ in the module DAG (tools/layers.txt) but must feed the
// cost-attribution profiler: barrier/ready-wait blame, steal victimhood and
// resident slice bytes originate there. Including profile/profiler.h from
// those modules would be a layering back-edge, so they call through this
// table instead; Profiler::arm() installs the callbacks (see
// profile/profiler.cc) and disarm() clears them.
//
// Cost model matches Profiler::enabled(): disarmed, every call site is one
// relaxed atomic load plus an untaken branch. The table itself is written
// only by install()/uninstall(), which the profiler calls from the
// coordinator thread before workers can observe armed() == true (the
// release store publishes the pointers).
#pragma once

#include <atomic>
#include <cstdint>

namespace tsg {
namespace prof {

// Raw integer types, deliberately: graph/types.h lives above common/ in the
// layering, so the aliases (PartitionId = uint32_t, Timestep = int32_t)
// cannot be named here.
struct Hooks {
  // Scheduler blame: partition p made others wait for `ns` (BSP barrier
  // straggler; async ready-queue gap ender).
  void (*wait_caused)(std::uint32_t partition, std::int64_t ns) = nullptr;
  // p's queued task was executed by another worker (p is the victim).
  void (*steal_victim)(std::uint32_t partition) = nullptr;
  // Resident attribute bytes of p's loaded instance at timestep t.
  void (*resident_slice)(std::uint32_t partition, std::int32_t timestep,
                         std::uint64_t bytes) = nullptr;
};

namespace prof_detail {
extern std::atomic<bool> g_armed;
extern Hooks g_hooks;
}  // namespace prof_detail

// The zero-cost gate every hook call site checks first.
// tsg:hot
inline bool armed() {
  // tsg:mo(gate flag; stale false only skips one sample, install's release
  // store publishes the table before true is observable)
  return prof_detail::g_armed.load(std::memory_order_relaxed);
}

// Valid to read only after armed() returned true (install() publishes the
// table with release ordering before arming).
inline const Hooks& hooks() { return prof_detail::g_hooks; }

// Installs the callback table and opens the gate. All three pointers must
// be non-null. Coordinator-only (profiler arm/disarm), never concurrent
// with itself.
void install(const Hooks& hooks);
// Closes the gate (the table stays valid for stragglers mid-call).
void uninstall();

}  // namespace prof
}  // namespace tsg
