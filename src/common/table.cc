#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/log.h"
#include "common/status.h"

namespace tsg {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TSG_CHECK(!header_.empty());
}

void TextTable::addRow(std::vector<std::string> cells) {
  TSG_CHECK_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::fmtCount(std::uint64_t v) {
  // Groups digits with commas: 1234567 -> "1,234,567".
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };

  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "-|");
    out << std::string(widths[c] + 2, '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) {
    emitRow(row);
  }
  return out.str();
}

std::string TextTable::renderCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') {
        quoted += "\"\"";
      } else {
        quoted += ch;
      }
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << escape(row[c]);
    }
    out << '\n';
  };
  emitRow(header_);
  for (const auto& row : rows_) {
    emitRow(row);
  }
  return out.str();
}

bool writeTextFile(const std::string& path, const std::string& text) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    TSG_LOG(Error) << "cannot open " << path << " for write";
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  if (!ok) {
    TSG_LOG(Error) << "short write to " << path;
  }
  return ok;
}

}  // namespace tsg
