// Minimal JSON helpers shared by the tracer and the metrics exporters.
//
// Emission: JsonWriter writes well-formed JSON into one growing string,
// tracking container nesting and inserting commas itself, so call sites read
// like the document they produce.
//
// Parsing: JsonValue is a small recursive-descent DOM used by the analysis
// layer to read runStatsToJson output back (tsgcli analyze / compare). It is
// a complete JSON reader (objects, arrays, strings with escapes, numbers,
// booleans, null) but tuned for trusted tool output, not adversarial input:
// nesting depth is capped, numbers are stored as both int64 and double.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tsg {

// Appends `text` to `out` with JSON string escaping (quotes, backslash,
// control characters); does NOT add the surrounding quotes.
void appendJsonEscaped(std::string& out, std::string_view text);

class JsonWriter {
 public:
  explicit JsonWriter(std::size_t reserve_bytes = 256) {
    out_.reserve(reserve_bytes);
  }

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  // Object member key; must be followed by exactly one value or container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool b);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v);  // finite values only; NaN/inf emit 0
  void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }

  // Appends `number` verbatim as a JSON number token (caller guarantees it
  // is one); used where printf-style formatting must control precision.
  void rawNumber(std::string_view number);

  // key() + value() in one call.
  template <typename T>
  void kv(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  // The document built so far. Valid JSON once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char bracket);
  void close(char bracket);
  void separate();  // comma handling before a value/key in a container

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

// Parsed JSON document node. Object member order is not preserved (members
// live in a std::map), which is fine for the schema lookups this backs.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  // Parses one complete JSON document (surrounding whitespace allowed;
  // trailing garbage is an error). Errors carry a byte offset.
  static Result<JsonValue> parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool boolValue() const { return bool_; }
  // Numbers keep both representations; integer-looking tokens round-trip
  // exactly through int64 (uint64 totals above 2^63 are not expected in the
  // schemas this reads).
  [[nodiscard]] std::int64_t intValue() const { return int_; }
  [[nodiscard]] double doubleValue() const { return double_; }
  [[nodiscard]] const std::string& stringValue() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& array() const { return array_; }
  [[nodiscard]] const std::map<std::string, JsonValue>& object() const {
    return object_;
  }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Convenience accessors for "member or default" reads.
  [[nodiscard]] std::int64_t intOr(std::string_view key,
                                   std::int64_t fallback) const;
  [[nodiscard]] double doubleOr(std::string_view key, double fallback) const;
  [[nodiscard]] std::string stringOr(std::string_view key,
                                     std::string fallback) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace tsg
