// Minimal JSON emission helper shared by the tracer and the metrics
// exporters. Writes well-formed JSON into one growing string: the writer
// tracks container nesting and inserts commas itself, so call sites read
// like the document they produce. No DOM, no parsing — emission only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsg {

// Appends `text` to `out` with JSON string escaping (quotes, backslash,
// control characters); does NOT add the surrounding quotes.
void appendJsonEscaped(std::string& out, std::string_view text);

class JsonWriter {
 public:
  explicit JsonWriter(std::size_t reserve_bytes = 256) {
    out_.reserve(reserve_bytes);
  }

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  // Object member key; must be followed by exactly one value or container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool b);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v);  // finite values only; NaN/inf emit 0
  void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }

  // Appends `number` verbatim as a JSON number token (caller guarantees it
  // is one); used where printf-style formatting must control precision.
  void rawNumber(std::string_view number);

  // key() + value() in one call.
  template <typename T>
  void kv(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  // The document built so far. Valid JSON once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char bracket);
  void close(char bracket);
  void separate();  // comma handling before a value/key in a container

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace tsg
