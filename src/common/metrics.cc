#include "common/metrics.h"

#include <algorithm>
#include <memory>
#include <tuple>

#include "common/status.h"

namespace tsg {

struct MetricsRegistry::Cell {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::int32_t partition = kNoPartition;
  Kind kind = Kind::kCounter;
  Counter counter;
  Gauge gauge;
  // Histograms are heap-side: they are an atomic array an order of magnitude
  // bigger than a counter, and most cells are counters.
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::~MetricsRegistry() {
  for (Cell* cell : cells_) {
    delete cell;
  }
}

namespace {

MetricsRegistry::Cell* findCell(
    const std::vector<MetricsRegistry::Cell*>& cells, std::string_view name,
    std::int32_t partition) {
  for (MetricsRegistry::Cell* cell : cells) {
    if (cell->partition == partition && cell->name == name) {
      return cell;
    }
  }
  return nullptr;
}

}  // namespace

MetricsRegistry::Cell& MetricsRegistry::findOrCreateCell(
    std::string_view name, std::int32_t partition, int kind) {
  const auto want = static_cast<Cell::Kind>(kind);
  Cell* cell = findCell(cells_, name, partition);
  if (cell == nullptr) {
    cell = new Cell();
    cell->name = std::string(name);
    cell->partition = partition;
    cell->kind = want;
    if (want == Cell::Kind::kHistogram) {
      cell->histogram = std::make_unique<Histogram>();
    }
    cells_.push_back(cell);
  }
  TSG_CHECK_MSG(cell->kind == want, "metric registered with a different kind");
  return *cell;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name,
                                                   std::int32_t partition) {
  std::lock_guard lock(mutex_);
  return findOrCreateCell(name, partition,
                          static_cast<int>(Cell::Kind::kCounter))
      .counter;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name,
                                               std::int32_t partition) {
  std::lock_guard lock(mutex_);
  return findOrCreateCell(name, partition, static_cast<int>(Cell::Kind::kGauge))
      .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::int32_t partition) {
  std::lock_guard lock(mutex_);
  return *findOrCreateCell(name, partition,
                           static_cast<int>(Cell::Kind::kHistogram))
              .histogram;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot points;
  {
    std::lock_guard lock(mutex_);
    points.reserve(cells_.size());
    for (const Cell* cell : cells_) {
      if (cell->kind == Cell::Kind::kHistogram) {
        continue;  // distributions travel via histogramSnapshot()
      }
      Point point;
      point.name = cell->name;
      point.partition = cell->partition;
      point.is_gauge = cell->kind == Cell::Kind::kGauge;
      point.value = point.is_gauge
                        ? cell->gauge.value()
                        : static_cast<std::int64_t>(cell->counter.value());
      point.touches = point.is_gauge ? cell->gauge.touches() : 0;
      points.push_back(std::move(point));
    }
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) {
              return std::tie(a.name, a.partition) <
                     std::tie(b.name, b.partition);
            });
  return points;
}

MetricsRegistry::HistogramSnapshots MetricsRegistry::histogramSnapshot()
    const {
  HistogramSnapshots snaps;
  {
    std::lock_guard lock(mutex_);
    for (const Cell* cell : cells_) {
      if (cell->kind != Cell::Kind::kHistogram) {
        continue;
      }
      const Histogram& h = *cell->histogram;
      HistogramSnapshot snap;
      snap.name = cell->name;
      snap.partition = cell->partition;
      snap.count = h.count();
      snap.sum = h.sum();
      snap.max = h.max();
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        snap.buckets[static_cast<std::size_t>(i)] =
            h.buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);  // tsg:mo(snapshot read; a scrape tolerates tearing)
      }
      snaps.push_back(std::move(snap));
    }
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return std::tie(a.name, a.partition) <
                     std::tie(b.name, b.partition);
            });
  return snaps;
}

std::uint64_t MetricsRegistry::HistogramSnapshot::quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; q=1.0 maps to the last sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Never report beyond the observed max (the top bucket's upper bound
      // can be far above it).
      return std::min(Histogram::bucketUpperBound(i), max);
    }
  }
  return max;
}

void MetricsRegistry::HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (Cell* cell : cells_) {
    cell->counter.value_.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
    cell->gauge.value_.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
    cell->gauge.touches_.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
    if (cell->histogram != nullptr) {
      Histogram& h = *cell->histogram;
      for (auto& bucket : h.buckets_) {
        bucket.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
      }
      h.count_.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
      h.sum_.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
      h.max_.store(0, std::memory_order_relaxed);  // tsg:mo(reset under mutex_; tolerates racing adds)
    }
  }
}

MetricsRegistry::Snapshot snapshotDelta(
    const MetricsRegistry::Snapshot& before,
    const MetricsRegistry::Snapshot& after) {
  MetricsRegistry::Snapshot delta;
  delta.reserve(after.size());
  for (const auto& point : after) {
    const auto it = std::lower_bound(
        before.begin(), before.end(), point,
        [](const MetricsRegistry::Point& a, const MetricsRegistry::Point& b) {
          return std::tie(a.name, a.partition) < std::tie(b.name, b.partition);
        });
    MetricsRegistry::Point out = point;
    const bool known_before = it != before.end() && it->name == point.name &&
                              it->partition == point.partition;
    if (point.is_gauge) {
      // A gauge that existed before the window and was never set/add-ed
      // during it is residue from an earlier run — drop it so concurrent or
      // back-to-back engines do not leak each other's levels into RunStats.
      if (known_before && it->touches == point.touches) {
        continue;
      }
    } else {
      if (known_before) {
        out.value -= it->value;
      }
      if (out.value == 0) {
        continue;
      }
    }
    delta.push_back(std::move(out));
  }
  return delta;
}

MetricsRegistry::HistogramSnapshots histogramDelta(
    const MetricsRegistry::HistogramSnapshots& before,
    const MetricsRegistry::HistogramSnapshots& after) {
  MetricsRegistry::HistogramSnapshots delta;
  delta.reserve(after.size());
  for (const auto& snap : after) {
    const auto it = std::lower_bound(
        before.begin(), before.end(), snap,
        [](const MetricsRegistry::HistogramSnapshot& a,
           const MetricsRegistry::HistogramSnapshot& b) {
          return std::tie(a.name, a.partition) < std::tie(b.name, b.partition);
        });
    MetricsRegistry::HistogramSnapshot out = snap;
    if (it != before.end() && it->name == snap.name &&
        it->partition == snap.partition) {
      out.count -= it->count;
      out.sum -= it->sum;
      for (std::size_t i = 0; i < out.buckets.size(); ++i) {
        out.buckets[i] -= it->buckets[i];
      }
      // `max` keeps the after-value: the true per-run max is not recoverable
      // from two cumulative snapshots. An upper estimate, like the quantiles.
    }
    if (out.count == 0) {
      continue;
    }
    delta.push_back(std::move(out));
  }
  return delta;
}

}  // namespace tsg
