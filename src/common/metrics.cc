#include "common/metrics.h"

#include <algorithm>
#include <tuple>

#include "common/status.h"

namespace tsg {

struct MetricsRegistry::Cell {
  std::string name;
  std::int32_t partition = kNoPartition;
  bool is_gauge = false;
  Counter counter;
  Gauge gauge;
};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::~MetricsRegistry() {
  for (Cell* cell : cells_) {
    delete cell;
  }
}

namespace {

MetricsRegistry::Cell* findCell(
    const std::vector<MetricsRegistry::Cell*>& cells, std::string_view name,
    std::int32_t partition) {
  for (MetricsRegistry::Cell* cell : cells) {
    if (cell->partition == partition && cell->name == name) {
      return cell;
    }
  }
  return nullptr;
}

}  // namespace

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name,
                                                   std::int32_t partition) {
  std::lock_guard lock(mutex_);
  Cell* cell = findCell(cells_, name, partition);
  if (cell == nullptr) {
    cell = new Cell{std::string(name), partition, /*is_gauge=*/false, {}, {}};
    cells_.push_back(cell);
  }
  TSG_CHECK_MSG(!cell->is_gauge, "metric registered as a gauge");
  return cell->counter;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name,
                                               std::int32_t partition) {
  std::lock_guard lock(mutex_);
  Cell* cell = findCell(cells_, name, partition);
  if (cell == nullptr) {
    cell = new Cell{std::string(name), partition, /*is_gauge=*/true, {}, {}};
    cells_.push_back(cell);
  }
  TSG_CHECK_MSG(cell->is_gauge, "metric registered as a counter");
  return cell->gauge;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot points;
  {
    std::lock_guard lock(mutex_);
    points.reserve(cells_.size());
    for (const Cell* cell : cells_) {
      Point point;
      point.name = cell->name;
      point.partition = cell->partition;
      point.is_gauge = cell->is_gauge;
      point.value = cell->is_gauge
                        ? cell->gauge.value()
                        : static_cast<std::int64_t>(cell->counter.value());
      points.push_back(std::move(point));
    }
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) {
              return std::tie(a.name, a.partition) <
                     std::tie(b.name, b.partition);
            });
  return points;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (Cell* cell : cells_) {
    cell->counter.value_.store(0, std::memory_order_relaxed);
    cell->gauge.value_.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry::Snapshot snapshotDelta(
    const MetricsRegistry::Snapshot& before,
    const MetricsRegistry::Snapshot& after) {
  MetricsRegistry::Snapshot delta;
  delta.reserve(after.size());
  for (const auto& point : after) {
    const auto it = std::lower_bound(
        before.begin(), before.end(), point,
        [](const MetricsRegistry::Point& a, const MetricsRegistry::Point& b) {
          return std::tie(a.name, a.partition) < std::tie(b.name, b.partition);
        });
    MetricsRegistry::Point out = point;
    if (!point.is_gauge) {
      if (it != before.end() && it->name == point.name &&
          it->partition == point.partition) {
        out.value -= it->value;
      }
      if (out.value == 0) {
        continue;
      }
    }
    delta.push_back(std::move(out));
  }
  return delta;
}

}  // namespace tsg
