// Run tracing — Chrome/Perfetto trace-event capture for the TI-BSP stack.
//
// The tracer is a process-wide singleton that buffers events per thread and
// serializes them as Chrome trace-event JSON ("traceEvents" array), loadable
// in Perfetto / chrome://tracing. Four event kinds:
//   * spans    — RAII TraceSpan objects become complete ("X") events with
//                nested durations (timestep → superstep → partition job);
//   * instants — point-in-time markers ("i");
//   * counters — numeric tracks ("C"), e.g. delivered messages per superstep;
//   * flows    — "s"/"t"/"f" events sharing a 64-bit flow id, drawn by the
//                viewer as arrows between the spans that enclose them. The
//                message fabric uses them to causally link a batch's send
//                (worker thread) → deliver (coordinator) → drain (receiving
//                worker) across named threads.
//
// Cost model: when tracing is disabled (the default), every instrumentation
// site is one relaxed atomic load and a branch — no allocation, no clock
// read. When enabled, an event is one clock read plus an append to the
// calling thread's buffer under that buffer's (uncontended) mutex; hot
// per-message/per-vertex paths are deliberately NOT instrumented, only
// structural points (rounds, supersteps, deliveries, pack loads).
//
// Event names and arg keys must be string literals: events store the
// pointers, not copies, and the buffers outlive any call-site scope. The
// public API enforces this at compile time via TraceLiteral — passing a
// runtime char* (e.g. std::string::c_str()) is a build error, not a
// use-after-free at export time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsg {

namespace trace_detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_detail

// Compile-time guard for the literal-lifetime contract: only constructible
// (consteval) from character-array literals or nullptr, so every name /
// category / arg key handed to the tracer is known to live forever. Used at
// all instrumentation call sites via the TraceSpan / traceInstant /
// traceCounter / traceFlow* signatures.
struct TraceLiteral {
  template <std::size_t N>
  consteval TraceLiteral(const char (&literal)[N])  // NOLINT(runtime/explicit)
      : str(literal) {}
  consteval TraceLiteral(std::nullptr_t)  // NOLINT(runtime/explicit)
      : str(nullptr) {}

  const char* str;
};

// One buffered event (exposed for tests; not part of the stable API).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  char phase = 'X';         // 'X' complete, 'i' instant, 'C' counter,
                            // 's'/'t'/'f' flow start/step/finish
  std::int64_t ts_ns = 0;   // steady-clock nanoseconds
  std::int64_t dur_ns = 0;  // 'X' only
  std::uint64_t flow_id = 0;  // 's'/'t'/'f' only; pairs the arrow endpoints
  // Up to two integer args ('X'/'i'); 'C' stores the counter value in v1.
  const char* k1 = nullptr;
  std::int64_t v1 = 0;
  const char* k2 = nullptr;
  std::int64_t v2 = 0;
};

class Tracer {
 public:
  // The process-wide tracer instance.
  static Tracer& instance();

  // True while events are being collected. The one-branch gate every
  // instrumentation site checks first.
  static bool enabled() {
    return trace_detail::g_trace_enabled.load(std::memory_order_relaxed);  // tsg:mo(gate read; a stale false only skips one event)
  }

  // Drops previously buffered events and starts collecting.
  void start();
  // Stops collecting; buffered events stay available for export.
  void stop();
  // Stops and drops all buffered events and thread registrations.
  void clear();

  // Names the calling thread in the exported trace ("partition-3", ...).
  // Safe to call whether or not tracing is enabled; the name sticks across
  // start()/clear() cycles for the lifetime of the thread.
  static void setCurrentThreadName(std::string name);

  // Export. Call after the traced work finished (no concurrent spans open).
  // Warns once per start() if any events were dropped (see below), so a
  // truncated trace never silently passes for a complete one.
  [[nodiscard]] std::string toJson();
  Status writeJson(const std::string& path);

  // Per-thread buffers are capped (default 1<<18 events ≈ 23 MB/thread);
  // events recorded past the cap are discarded and counted into the
  // `trace.dropped_events` metric. droppedEventCount() reports drops since
  // the last start().
  static constexpr std::size_t kDefaultMaxEventsPerBuffer = std::size_t{1}
                                                            << 18;
  [[nodiscard]] static std::size_t droppedEventCount();
  // Test hook: shrink the cap so saturation is reachable without recording
  // 2^18 events. Takes effect for subsequent record() calls.
  static void setMaxEventsPerBufferForTest(std::size_t cap);

  // Introspection for tests.
  [[nodiscard]] std::size_t eventCount();
  [[nodiscard]] std::vector<TraceEvent> snapshotEvents();

  // Internal: appends to the calling thread's buffer (enabled() was true).
  void record(const TraceEvent& event);

  // Implementation detail (per-thread event buffer); public only so the
  // out-of-line definition and its registry can name it.
  struct ThreadBuffer;

 private:
  Tracer() = default;
  ThreadBuffer& threadBuffer();
};

// RAII scoped span: records one complete event from construction to
// destruction. Construction with tracing disabled costs one branch.
class TraceSpan {
 public:
  explicit TraceSpan(TraceLiteral category, TraceLiteral name,
                     TraceLiteral k1 = nullptr, std::int64_t v1 = 0,
                     TraceLiteral k2 = nullptr, std::int64_t v2 = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  TraceEvent event_;
};

// Point-in-time marker.
void traceInstant(TraceLiteral category, TraceLiteral name,
                  TraceLiteral k1 = nullptr, std::int64_t v1 = 0);

// Counter track sample: `track` becomes a named counter series in Perfetto.
void traceCounter(TraceLiteral track, std::int64_t value);

// --- Flow events -----------------------------------------------------------
// A flow is an arrow the viewer draws between the enclosing spans of its
// start/step/finish events; all three must share the same (category, name)
// and flow id. Emit the start on the producing thread, optional steps at
// hand-off points, and the finish on the consuming thread.

// Allocates a process-unique nonzero flow id.
std::uint64_t nextFlowId();

void traceFlowStart(TraceLiteral category, TraceLiteral name,
                    std::uint64_t flow_id);
void traceFlowStep(TraceLiteral category, TraceLiteral name,
                   std::uint64_t flow_id);
// Emitted with binding point "enclosing" so the arrow lands on the span
// that contains the finish, not the next slice on the thread.
void traceFlowFinish(TraceLiteral category, TraceLiteral name,
                     std::uint64_t flow_id);

}  // namespace tsg
