// Run tracing — Chrome/Perfetto trace-event capture for the TI-BSP stack.
//
// The tracer is a process-wide singleton that buffers events per thread and
// serializes them as Chrome trace-event JSON ("traceEvents" array), loadable
// in Perfetto / chrome://tracing. Three event kinds:
//   * spans    — RAII TraceSpan objects become complete ("X") events with
//                nested durations (timestep → superstep → partition job);
//   * instants — point-in-time markers ("i");
//   * counters — numeric tracks ("C"), e.g. delivered messages per superstep.
//
// Cost model: when tracing is disabled (the default), every instrumentation
// site is one relaxed atomic load and a branch — no allocation, no clock
// read. When enabled, an event is one clock read plus an append to the
// calling thread's buffer under that buffer's (uncontended) mutex; hot
// per-message/per-vertex paths are deliberately NOT instrumented, only
// structural points (rounds, supersteps, deliveries, pack loads).
//
// Event names and arg keys must be string literals (or otherwise outlive the
// tracer buffers): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsg {

namespace trace_detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_detail

// One buffered event (exposed for tests; not part of the stable API).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  char phase = 'X';         // 'X' complete, 'i' instant, 'C' counter
  std::int64_t ts_ns = 0;   // steady-clock nanoseconds
  std::int64_t dur_ns = 0;  // 'X' only
  // Up to two integer args ('X'/'i'); 'C' stores the counter value in v1.
  const char* k1 = nullptr;
  std::int64_t v1 = 0;
  const char* k2 = nullptr;
  std::int64_t v2 = 0;
};

class Tracer {
 public:
  // The process-wide tracer instance.
  static Tracer& instance();

  // True while events are being collected. The one-branch gate every
  // instrumentation site checks first.
  static bool enabled() {
    return trace_detail::g_trace_enabled.load(std::memory_order_relaxed);
  }

  // Drops previously buffered events and starts collecting.
  void start();
  // Stops collecting; buffered events stay available for export.
  void stop();
  // Stops and drops all buffered events and thread registrations.
  void clear();

  // Names the calling thread in the exported trace ("partition-3", ...).
  // Safe to call whether or not tracing is enabled; the name sticks across
  // start()/clear() cycles for the lifetime of the thread.
  static void setCurrentThreadName(std::string name);

  // Export. Call after the traced work finished (no concurrent spans open).
  [[nodiscard]] std::string toJson();
  Status writeJson(const std::string& path);

  // Introspection for tests.
  [[nodiscard]] std::size_t eventCount();
  [[nodiscard]] std::vector<TraceEvent> snapshotEvents();

  // Internal: appends to the calling thread's buffer (enabled() was true).
  void record(const TraceEvent& event);

  // Implementation detail (per-thread event buffer); public only so the
  // out-of-line definition and its registry can name it.
  struct ThreadBuffer;

 private:
  Tracer() = default;
  ThreadBuffer& threadBuffer();
};

// RAII scoped span: records one complete event from construction to
// destruction. Construction with tracing disabled costs one branch.
class TraceSpan {
 public:
  explicit TraceSpan(const char* category, const char* name,
                     const char* k1 = nullptr, std::int64_t v1 = 0,
                     const char* k2 = nullptr, std::int64_t v2 = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  TraceEvent event_;
};

// Point-in-time marker.
void traceInstant(const char* category, const char* name,
                  const char* k1 = nullptr, std::int64_t v1 = 0);

// Counter track sample: `track` becomes a named counter series in Perfetto.
void traceCounter(const char* track, std::int64_t value);

}  // namespace tsg
