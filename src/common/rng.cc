#include "common/rng.h"

namespace tsg {

std::uint64_t Rng::uniformBelow(std::uint64_t bound) {
  TSG_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace tsg
