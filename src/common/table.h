// ASCII table and CSV rendering for the benchmark harness.
//
// The bench binaries print paper-style tables/series with this; keeping the
// formatting in one place makes every bench's output uniform.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsg {

// A simple row/column table. Columns are sized to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  // Convenience cell formatting.
  static std::string fmtDouble(double v, int precision = 2);
  static std::string fmtPercent(double fraction, int precision = 2);
  static std::string fmtCount(std::uint64_t v);

  // Renders with aligned columns and a header separator.
  [[nodiscard]] std::string render() const;

  // Renders as CSV (header + rows), for machine consumption.
  [[nodiscard]] std::string renderCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes text to a file, creating parent directories as needed.
// Returns false on I/O failure (already logged).
bool writeTextFile(const std::string& path, const std::string& text);

}  // namespace tsg
