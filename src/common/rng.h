// Deterministic random number generation.
//
// Every generator and randomized algorithm in tsgraph takes an explicit
// 64-bit seed; there is no global RNG. Xoshiro256** is the workhorse
// generator, seeded through SplitMix64 (the construction recommended by the
// xoshiro authors). Both are reproducible across platforms.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace tsg {

// SplitMix64: tiny, fast, used for seeding and hash mixing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  // Lemire's multiply-shift with rejection for unbiased results.
  std::uint64_t uniformBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    TSG_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniformBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniformDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniformDouble(double lo, double hi) {
    return lo + (hi - lo) * uniformDouble();
  }

  // Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p) { return uniformDouble() < p; }

  // A new generator with an independent stream derived from this seed space.
  Rng fork() { return Rng(next() ^ 0xA02BDBF7BB3C0A7ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tsg
