#include "common/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>

#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace tsg {

namespace trace_detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_detail

// Per-thread event buffer. Owned by the registry (so it survives thread
// exit until clear()), appended to only by its thread, read by the exporting
// thread; the per-buffer mutex covers that one cross-thread handoff.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::string name;
  std::uint32_t tid = 0;
};

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Tracer::ThreadBuffer>> buffers;
  // Bumped by clear() so threads re-register instead of touching freed
  // buffers they may still cache.
  std::atomic<std::uint64_t> generation{1};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive main
  return *r;
}

thread_local Tracer::ThreadBuffer* t_buffer = nullptr;
thread_local std::uint64_t t_generation = 0;
thread_local std::string t_thread_name;

// Saturation accounting: events recorded once a per-thread buffer is full
// are dropped, counted here (for the warn-once at export) and into the
// `trace.dropped_events` metric (for RunStats / telemetry visibility).
std::atomic<std::size_t> g_max_events_per_buffer{
    Tracer::kDefaultMaxEventsPerBuffer};
std::atomic<std::uint64_t> g_dropped_events{0};
std::atomic<bool> g_drop_warned{false};

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::threadBuffer() {
  auto& reg = registry();
  const std::uint64_t gen = reg.generation.load(std::memory_order_acquire);  // tsg:mo(acquire pairs with clear()'s acq_rel generation bump)
  if (t_buffer == nullptr || t_generation != gen) {
    std::lock_guard lock(reg.mutex);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(reg.buffers.size());
    buffer->name = t_thread_name;
    t_buffer = buffer.get();
    // Re-read under the lock: a concurrent clear() cannot run between here
    // and the push_back because it takes the same mutex.
    t_generation = reg.generation.load(std::memory_order_relaxed);  // tsg:mo(re-read under reg.mutex; the lock orders it)
    reg.buffers.push_back(std::move(buffer));
  }
  return *t_buffer;
}

void Tracer::record(const TraceEvent& event) {
  auto& buffer = threadBuffer();
  std::lock_guard lock(buffer.mutex);
  if (buffer.events.size() >=
      g_max_events_per_buffer.load(std::memory_order_relaxed)) {  // tsg:mo(cap read; a stale cap only shifts the drop point)
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(drop tally; read after tracing stops)
    static MetricsRegistry::Counter& dropped =
        MetricsRegistry::global().counter("trace.dropped_events");
    dropped.increment();
    return;
  }
  buffer.events.push_back(event);
}

void Tracer::start() {
  clear();
  g_dropped_events.store(0, std::memory_order_relaxed);  // tsg:mo(reset before tracing starts; start()'s release publishes it)
  g_drop_warned.store(false, std::memory_order_relaxed);  // tsg:mo(reset before tracing starts; start()'s release publishes it)
  trace_detail::g_trace_enabled.store(true, std::memory_order_release);  // tsg:mo(release publishes the resets above to tracing threads)
}

void Tracer::stop() {
  trace_detail::g_trace_enabled.store(false, std::memory_order_release);  // tsg:mo(disable gate; sites re-check before touching buffers)
}

void Tracer::clear() {
  stop();
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.buffers.clear();
  reg.generation.fetch_add(1, std::memory_order_acq_rel);  // tsg:mo(acq_rel pairs with threadBuffer()'s acquire generation load)
}

void Tracer::setCurrentThreadName(std::string name) {
  t_thread_name = std::move(name);
  if (t_buffer != nullptr &&
      t_generation ==
          registry().generation.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with clear()'s acq_rel generation bump)
    std::lock_guard lock(t_buffer->mutex);
    t_buffer->name = t_thread_name;
  }
}

std::size_t Tracer::eventCount() {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::vector<TraceEvent> Tracer::snapshotEvents() {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::vector<TraceEvent> all;
  for (const auto& buffer : reg.buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  return all;
}

namespace {

// Trace-event timestamps are microseconds; keep sub-µs precision as decimals.
void appendTsUs(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

bool isFlowPhase(char phase) {
  return phase == 's' || phase == 't' || phase == 'f';
}

void appendEvent(JsonWriter& json, const TraceEvent& ev, std::uint32_t tid) {
  json.beginObject();
  json.kv("name", ev.name);
  if (ev.category != nullptr) {
    json.kv("cat", ev.category);
  }
  json.kv("ph", std::string_view(&ev.phase, 1));
  json.kv("pid", std::uint64_t{0});
  json.kv("tid", std::uint64_t{tid});
  json.key("ts");
  std::string ts;
  appendTsUs(ts, ev.ts_ns);
  json.rawNumber(ts);  // full precision; value(double) would round
  if (ev.phase == 'X') {
    json.key("dur");
    std::string dur;
    appendTsUs(dur, ev.dur_ns);
    json.rawNumber(dur);
  }
  if (isFlowPhase(ev.phase)) {
    json.kv("id", ev.flow_id);
    if (ev.phase == 'f') {
      json.kv("bp", "e");  // bind to the enclosing span
    }
  }
  json.key("args");
  json.beginObject();
  if (ev.phase == 'C') {
    json.kv("value", ev.v1);
  } else {
    if (ev.k1 != nullptr) {
      json.kv(ev.k1, ev.v1);
    }
    if (ev.k2 != nullptr) {
      json.kv(ev.k2, ev.v2);
    }
  }
  json.endObject();
  json.endObject();
}

}  // namespace

std::size_t Tracer::droppedEventCount() {
  return g_dropped_events.load(std::memory_order_relaxed);  // tsg:mo(drop tally read; reporting only)
}

void Tracer::setMaxEventsPerBufferForTest(std::size_t cap) {
  g_max_events_per_buffer.store(cap, std::memory_order_relaxed);  // tsg:mo(test-only cap write; set while quiescent)
}

std::string Tracer::toJson() {
  const std::uint64_t dropped =
      g_dropped_events.load(std::memory_order_relaxed);  // tsg:mo(drop tally read; toJson runs after tracing stops)
  if (dropped > 0 && !g_drop_warned.exchange(true)) {
    TSG_LOG(Warn) << "trace buffers saturated: " << dropped
                  << " events dropped; the exported trace is truncated";
  }
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  JsonWriter json(1 << 16);
  json.beginObject();
  json.kv("displayTimeUnit", "ms");
  json.key("traceEvents");
  json.beginArray();
  for (const auto& buffer : reg.buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    if (!buffer->name.empty()) {
      json.beginObject();
      json.kv("name", "thread_name");
      json.kv("ph", "M");
      json.kv("pid", std::uint64_t{0});
      json.kv("tid", std::uint64_t{buffer->tid});
      json.key("args");
      json.beginObject();
      json.kv("name", buffer->name);
      json.endObject();
      json.endObject();
    }
    for (const auto& ev : buffer->events) {
      appendEvent(json, ev, buffer->tid);
    }
  }
  json.endArray();
  json.endObject();
  return json.take();
}

Status Tracer::writeJson(const std::string& path) {
  if (!writeTextFile(path, toJson())) {
    return Status::ioError("cannot write trace to " + path);
  }
  return Status::ok();
}

TraceSpan::TraceSpan(TraceLiteral category, TraceLiteral name, TraceLiteral k1,
                     std::int64_t v1, TraceLiteral k2, std::int64_t v2)
    : active_(Tracer::enabled()) {
  if (!active_) {
    return;
  }
  event_.category = category.str;
  event_.name = name.str;
  event_.phase = 'X';
  event_.k1 = k1.str;
  event_.v1 = v1;
  event_.k2 = k2.str;
  event_.v2 = v2;
  event_.ts_ns = steadyNowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  event_.dur_ns = steadyNowNs() - event_.ts_ns;
  // A span that straddles stop() is still recorded: its start was observed
  // under an enabled tracer and dropping it would unbalance the nesting.
  Tracer::instance().record(event_);
}

void traceInstant(TraceLiteral category, TraceLiteral name, TraceLiteral k1,
                  std::int64_t v1) {
  if (!Tracer::enabled()) {
    return;
  }
  TraceEvent ev;
  ev.category = category.str;
  ev.name = name.str;
  ev.phase = 'i';
  ev.ts_ns = steadyNowNs();
  ev.k1 = k1.str;
  ev.v1 = v1;
  Tracer::instance().record(ev);
}

void traceCounter(TraceLiteral track, std::int64_t value) {
  if (!Tracer::enabled()) {
    return;
  }
  TraceEvent ev;
  ev.name = track.str;
  ev.phase = 'C';
  ev.ts_ns = steadyNowNs();
  ev.v1 = value;
  Tracer::instance().record(ev);
}

namespace {

std::atomic<std::uint64_t> g_next_flow_id{1};

void traceFlow(char phase, TraceLiteral category, TraceLiteral name,
               std::uint64_t flow_id) {
  if (!Tracer::enabled()) {
    return;
  }
  TraceEvent ev;
  ev.category = category.str;
  ev.name = name.str;
  ev.phase = phase;
  ev.ts_ns = steadyNowNs();
  ev.flow_id = flow_id;
  Tracer::instance().record(ev);
}

}  // namespace

std::uint64_t nextFlowId() {
  return g_next_flow_id.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(flow-id allocator; uniqueness only, no ordering)
}

void traceFlowStart(TraceLiteral category, TraceLiteral name,
                    std::uint64_t flow_id) {
  traceFlow('s', category, name, flow_id);
}

void traceFlowStep(TraceLiteral category, TraceLiteral name,
                   std::uint64_t flow_id) {
  traceFlow('t', category, name, flow_id);
}

void traceFlowFinish(TraceLiteral category, TraceLiteral name,
                     std::uint64_t flow_id) {
  traceFlow('f', category, name, flow_id);
}

}  // namespace tsg
