// Determinism harness — runs the same job under N perturbed worker
// schedules and compares canonical output digests (see digest.h).
//
// Every run executes with schedule perturbation enabled under a distinct
// derived seed (base seed + run index), so worker release order, barrier
// arrival order and parallelFor dispatch order all differ between runs.
// A digest divergence means the job's output depends on scheduling — a
// violation of the TI-BSP determinism guarantee that no sanitizer can see,
// because order-sensitivity needs no data race.
//
// Used by `tsgcli check <algo> <dataset> --runs=N` and directly by tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace tsg {
namespace check {

struct DeterminismOptions {
  std::int32_t runs = 3;
  std::uint64_t seed = 1;
};

struct DeterminismReport {
  struct Run {
    std::uint64_t perturb_seed = 0;
    std::string digest;
  };
  bool deterministic = true;
  std::vector<Run> runs;
  // Empty when deterministic; otherwise names the first diverging run.
  std::string divergence;
};

// run_and_digest(i) executes run i (perturbation is already enabled with
// that run's seed) and returns its canonical digest. Perturbation state is
// restored to disabled on return.
DeterminismReport checkDeterminism(
    const DeterminismOptions& options,
    const std::function<std::string(std::int32_t run_index)>& run_and_digest);

// Renders the report as a small human-readable table.
std::string renderDeterminismReport(const DeterminismReport& report,
                                    std::string_view label);

}  // namespace check
}  // namespace tsg
