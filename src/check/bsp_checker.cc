#include "check/bsp_checker.h"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/status.h"

namespace tsg {
namespace check {

namespace check_detail {

bool envDefault() {
  const char* env = std::getenv("TSG_CHECK");
  if (env == nullptr) {
#if defined(TSG_CHECK_DEFAULT_ON)
    return true;
#else
    return false;
#endif
  }
  const std::string v(env);
  return v == "1" || v == "on" || v == "true" || v == "yes";
}

std::atomic<bool> g_check_enabled{envDefault()};

// Handler registry. Violations can fire on any worker thread; the mutex
// covers handler installation racing a firing violation.
std::mutex g_handler_mutex;
ViolationHandler g_handler;  // empty = default (log + abort)

}  // namespace check_detail

void setEnabled(bool on) {
  check_detail::g_check_enabled.store(on, std::memory_order_relaxed);  // tsg:mo(gate flag; no data is published with it)
}

void setViolationHandler(ViolationHandler handler) {
  std::lock_guard lock(check_detail::g_handler_mutex);
  check_detail::g_handler = std::move(handler);
}

void clearViolationHandler() { setViolationHandler({}); }

BspChecker::BspChecker(std::uint32_t num_partitions)
    : parts_(num_partitions) {
  TSG_CHECK(num_partitions > 0);
}

void BspChecker::violate(const char* rule, PartitionId p,
                         std::uint64_t flow_id, std::string detail) {
  violations_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(stat counter; read after the run quiesces)
  Violation v;
  v.rule = rule;
  v.partition = p;
  v.timestep = timestep();
  v.superstep = superstep();
  v.flow_id = flow_id;
  std::ostringstream os;
  os << "BSP protocol violation [" << rule << "]: " << detail
     << " (timestep " << v.timestep << ", superstep " << v.superstep;
  if (p != kInvalidPartition) {
    os << ", partition " << p;
  }
  if (flow_id != 0) {
    os << ", flow " << flow_id;
  }
  os << ")";
  v.detail = os.str();

  ViolationHandler handler;
  {
    std::lock_guard lock(check_detail::g_handler_mutex);
    handler = check_detail::g_handler;
  }
  if (handler) {
    handler(v);
    rebaseline();
    return;
  }
  TSG_LOG(Error) << v.detail;
  std::abort();
}

void BspChecker::rebaseline() {
  sent_messages_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  sent_bytes_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  outstanding_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  consumed_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  if (async_mode_) {
    for (auto& ps : parts_) {
      ps.entered_this_wave.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
    }
  }
}

void BspChecker::beginTimestep(Timestep t) {
  timestep_.store(t, std::memory_order_relaxed);  // tsg:mo(coordinator writes between phases; the barrier orders them)
  superstep_.store(-1, std::memory_order_relaxed);  // tsg:mo(coordinator writes between phases; the barrier orders them)
}

void BspChecker::beginSuperstep(std::int32_t s) {
  superstep_.store(s, std::memory_order_relaxed);  // tsg:mo(coordinator writes between phases; the barrier orders them)
  if (async_mode_) {
    // A new wave (or a phase boundary: end-of-timestep round, next
    // timestep's wave 0) starts here; each partition may enter compute
    // once until the next boundary.
    for (auto& ps : parts_) {
      ps.entered_this_wave.store(0, std::memory_order_relaxed);  // tsg:mo(coordinator writes between phases; the barrier orders them)
    }
  }
}

void BspChecker::onInject(std::uint64_t messages, std::uint64_t bytes) {
  (void)bytes;
  for (PartitionId p = 0; p < parts_.size(); ++p) {
    if (parts_[p].in_compute.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with the acq_rel phase-gate exchange)
      violate("inject-during-compute", p, 0,
              "coordinator injected " + std::to_string(messages) +
                  " message(s) while partition " + std::to_string(p) +
                  " was still inside its compute phase");
      return;
    }
  }
  outstanding_.fetch_add(messages, std::memory_order_relaxed);  // tsg:mo(conservation tally; compared only at the barrier)
}

void BspChecker::onDeliver(std::uint64_t messages, std::uint64_t bytes,
                           std::uint64_t leftover_messages,
                           std::uint64_t leftover_flow) {
  for (PartitionId p = 0; p < parts_.size(); ++p) {
    auto& ps = parts_[p];
    if (ps.in_compute.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with the acq_rel phase-gate exchange)
      violate("deliver-during-compute", p, 0,
              "barrier delivery ran while partition " + std::to_string(p) +
                  " was still inside its compute phase");
      return;
    }
    const auto entered = ps.rounds_entered.load(std::memory_order_relaxed);  // tsg:mo(read at the barrier; workers quiescent)
    const auto exited = ps.rounds_exited.load(std::memory_order_relaxed);  // tsg:mo(read at the barrier; workers quiescent)
    if (entered != exited) {
      violate("barrier-unpaired", p, 0,
              "partition " + std::to_string(p) + " entered " +
                  std::to_string(entered) + " round(s) but exited " +
                  std::to_string(exited));
      return;
    }
  }

  const auto sent = sent_messages_.load(std::memory_order_relaxed);  // tsg:mo(read at the barrier; workers quiescent)
  const auto sent_bytes = sent_bytes_.load(std::memory_order_relaxed);  // tsg:mo(read at the barrier; workers quiescent)
  if (messages != sent || bytes != sent_bytes) {
    violate("conservation-delivered", kInvalidPartition, leftover_flow,
            "fabric delivered " + std::to_string(messages) + " message(s) / " +
                std::to_string(bytes) + " byte(s) but workers sent " +
                std::to_string(sent) + " / " + std::to_string(sent_bytes) +
                " this superstep");
    return;
  }

  const auto outstanding = outstanding_.load(std::memory_order_relaxed);  // tsg:mo(read at the barrier; workers quiescent)
  const auto consumed = consumed_.load(std::memory_order_relaxed);  // tsg:mo(read at the barrier; workers quiescent)
  if (consumed != outstanding || leftover_messages != 0) {
    violate("conservation-consumed", kInvalidPartition, leftover_flow,
            std::to_string(outstanding) +
                " message(s) were delivered or injected but " +
                std::to_string(consumed) + " consumed; " +
                std::to_string(leftover_messages) +
                " abandoned in inboxes at the barrier");
    return;
  }

  sent_messages_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  sent_bytes_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  consumed_.store(0, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  outstanding_.store(messages, std::memory_order_relaxed);  // tsg:mo(barrier-side reset; workers quiescent)
  total_delivered_messages_ += messages;
  total_delivered_bytes_ += bytes;
}

void BspChecker::enableAsyncMode() { async_mode_ = true; }

void BspChecker::onSkipRound(PartitionId p, std::uint64_t inbox_pending) {
  TSG_CHECK(p < parts_.size());
  if (inbox_pending != 0) {
    violate("skip-with-pending", p, 0,
            "scheduler skipped partition " + std::to_string(p) +
                " this wave but its inbox still holds " +
                std::to_string(inbox_pending) + " message(s)");
  }
}

void BspChecker::onReset() { rebaseline(); }

void BspChecker::onRecovery() {
  for (auto& ps : parts_) {
    ps.in_compute.store(false, std::memory_order_relaxed);  // tsg:mo(recovery path; workers halted)
    const auto entered = ps.rounds_entered.load(std::memory_order_relaxed);  // tsg:mo(recovery path; workers halted)
    ps.rounds_exited.store(entered, std::memory_order_relaxed);  // tsg:mo(recovery path; workers halted)
    ps.entered_this_wave.store(0, std::memory_order_relaxed);  // tsg:mo(recovery path; workers halted)
  }
  rebaseline();
}

void BspChecker::enableRegistryReconciliation() {
  reconcile_registry_ = true;
  registry_messages_base_ =
      MetricsRegistry::global().counter("bus.messages_delivered").value();
  registry_bytes_base_ =
      MetricsRegistry::global().counter("bus.bytes_delivered").value();
}

void BspChecker::endRun() {
  const auto outstanding = outstanding_.load(std::memory_order_relaxed);  // tsg:mo(end of run; workers joined)
  const auto consumed = consumed_.load(std::memory_order_relaxed);  // tsg:mo(end of run; workers joined)
  if (outstanding != consumed) {
    violate("conservation-consumed", kInvalidPartition, 0,
            "run ended with " + std::to_string(outstanding - consumed) +
                " delivered message(s) never consumed");
    return;
  }
  if (reconcile_registry_) {
    const auto reg_messages =
        MetricsRegistry::global().counter("bus.messages_delivered").value() -
        registry_messages_base_;
    const auto reg_bytes =
        MetricsRegistry::global().counter("bus.bytes_delivered").value() -
        registry_bytes_base_;
    if (reg_messages != total_delivered_messages_ ||
        reg_bytes != total_delivered_bytes_) {
      violate("registry-mismatch", kInvalidPartition, 0,
              "MetricsRegistry recorded " + std::to_string(reg_messages) +
                  " delivered message(s) / " + std::to_string(reg_bytes) +
                  " byte(s) but the checker observed " +
                  std::to_string(total_delivered_messages_) + " / " +
                  std::to_string(total_delivered_bytes_));
    }
  }
}

void BspChecker::enterCompute(PartitionId p) {
  TSG_CHECK(p < parts_.size());
  auto& ps = parts_[p];
  if (ps.in_compute.exchange(true, std::memory_order_acq_rel)) {  // tsg:mo(phase gate; acq_rel orders compute writes with checker reads)
    violate("barrier-double-enter", p, 0,
            "partition " + std::to_string(p) +
                " entered a compute phase it was already inside");
    return;
  }
  ps.rounds_entered.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(tally reconciled at the barrier)
  if (async_mode_ &&
      ps.entered_this_wave.fetch_add(1, std::memory_order_relaxed) != 0) {  // tsg:mo(tally reconciled at the barrier)
    violate("wave-double-schedule", p, 0,
            "partition " + std::to_string(p) +
                " was scheduled twice within one wave (before the seal "
                "delivered)");
  }
}

void BspChecker::exitCompute(PartitionId p) {
  TSG_CHECK(p < parts_.size());
  auto& ps = parts_[p];
  if (!ps.in_compute.exchange(false, std::memory_order_acq_rel)) {  // tsg:mo(phase gate; acq_rel orders compute writes with checker reads)
    violate("barrier-exit-without-enter", p, 0,
            "partition " + std::to_string(p) +
                " exited a compute phase it never entered");
    return;
  }
  ps.rounds_exited.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(tally reconciled at the barrier)
}

void BspChecker::onComputeUnit(PartitionId p, std::uint64_t unit_id,
                               bool was_halted, bool reactivated) {
  if (was_halted && !reactivated) {
    violate("compute-on-halted", p, 0,
            "unit " + std::to_string(unit_id) +
                " was computed while halted and not reactivated (no pending "
                "messages, not superstep 0)");
  }
}

void BspChecker::onSend(PartitionId from, PartitionId to,
                        std::uint64_t bytes) {
  TSG_CHECK(from < parts_.size());
  if (!parts_[from].in_compute.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with the acq_rel phase-gate exchange)
    violate("send-outside-compute", from, 0,
            "partition " + std::to_string(from) + " sent a message to " +
                std::to_string(to) + " outside its compute phase");
    return;
  }
  sent_messages_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(tally reconciled at the barrier)
  sent_bytes_.fetch_add(bytes, std::memory_order_relaxed);  // tsg:mo(tally reconciled at the barrier)
}

void BspChecker::onConsume(PartitionId p, std::uint64_t messages,
                           Timestep stamp_t, std::int32_t stamp_s,
                           std::uint64_t flow_id) {
  const Timestep now_t = timestep();
  const std::int32_t now_s = superstep();
  const bool earlier =
      stamp_t < now_t || (stamp_t == now_t && stamp_s < now_s);
  if (!earlier) {
    violate("same-superstep-read", p, flow_id,
            "partition " + std::to_string(p) + " consumed " +
                std::to_string(messages) +
                " message(s) delivered at timestep " +
                std::to_string(stamp_t) + " superstep " +
                std::to_string(stamp_s) +
                ", which is not strictly earlier than the current superstep");
    return;
  }
  consumed_.fetch_add(messages, std::memory_order_relaxed);  // tsg:mo(tally reconciled at the barrier)
}

}  // namespace check
}  // namespace tsg
