// Canonical run digest — the equality the determinism harness compares.
//
// A digest is a 64-bit FNV-1a hash over a canonical byte serialization of a
// run's semantic outputs: every value is length- or tag-framed so that
// (e.g.) ["ab","c"] and ["a","bc"] hash differently, doubles hash by IEEE
// bit pattern (so -0.0 != +0.0 and every NaN payload is itself — if a
// schedule can flip a bit, we want to see it), and containers hash their
// size first. Timings, metrics and anything else wall-clock-derived are
// deliberately NOT part of a digest.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsg {
namespace check {

class Digest {
 public:
  void addU64(std::uint64_t v) {
    addTag('u');
    addRaw(v);
  }
  void addI64(std::int64_t v) {
    addTag('i');
    addRaw(static_cast<std::uint64_t>(v));
  }
  void addDouble(double v) {
    addTag('d');
    addRaw(std::bit_cast<std::uint64_t>(v));
  }
  void addString(std::string_view s) {
    addTag('s');
    addRaw(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
      addByte(static_cast<std::uint8_t>(c));
    }
  }

  template <typename T, typename Fn>
  void addVector(const std::vector<T>& values, Fn add_one) {
    addTag('v');
    addRaw(static_cast<std::uint64_t>(values.size()));
    for (const auto& v : values) {
      add_one(*this, v);
    }
  }

  void addU64s(const std::vector<std::uint64_t>& values);
  void addI64s(const std::vector<std::int64_t>& values);
  void addDoubles(const std::vector<double>& values);
  void addStrings(const std::vector<std::string>& values);

  // 16 lowercase hex digits of the current hash.
  [[nodiscard]] std::string hex() const;
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  void addByte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 0x00000100000001B3ULL;  // FNV-1a 64 prime
  }
  void addTag(char tag) { addByte(static_cast<std::uint8_t>(tag)); }
  void addRaw(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      addByte(static_cast<std::uint8_t>(v >> shift));
    }
  }

  std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
};

}  // namespace check
}  // namespace tsg
