// BSP protocol checker — a debug-enableable verification layer for the
// TI-BSP runtime (the correctness story of §III–IV made loud).
//
// The paper's semantics rest on three guarantees the runtime normally takes
// on faith:
//   1. Phase discipline — sends happen only inside a compute phase; the
//      coordinator delivers/injects only between rounds; every worker
//      enters and exits each round exactly once (barrier pairing).
//   2. Superstep visibility — a worker consumes only message batches that
//      were delivered at a strictly earlier superstep; nothing sent in
//      superstep s is readable in s.
//   3. Conservation — per superstep, messages sent == messages delivered ==
//      messages consumed (or explicitly carried to the next timestep);
//      counts and bytes, reconciled against the MetricsRegistry at run end.
//
// One BspChecker instance is created per engine run (per MessageBus / per
// vertex-centric fabric) when checking is enabled. Hooks are threaded
// through MessageBus, both engine families and the cluster job wrappers;
// with checking off every hook site is one null-pointer (or relaxed-load)
// branch — the same cost model as common/trace.
//
// A violation produces a precise diagnostic (rule, partition, timestep,
// superstep, trace flow id when one exists) and by default aborts the
// process. Tests install a collecting handler instead; if the handler
// returns, the checker re-baselines its accounting and keeps going
// best-effort so one violation does not cascade into noise.
//
// Enablement: compile default via -DTSG_CHECK=ON (CMake) which defines
// TSG_CHECK_DEFAULT_ON, overridable either way at runtime with the
// TSG_CHECK environment variable (1/on/true/yes vs 0/off/false/no) or
// programmatically with setEnabled().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/types.h"

namespace tsg {
namespace check {

namespace check_detail {
extern std::atomic<bool> g_check_enabled;
}  // namespace check_detail

// True while protocol checking is on. One relaxed load + branch — the gate
// every hook site tests before touching a checker.
inline bool enabled() {
  return check_detail::g_check_enabled.load(std::memory_order_relaxed);  // tsg:mo(gate read; hooks tolerate a stale on/off)
}
void setEnabled(bool on);

// One detected protocol violation.
struct Violation {
  std::string rule;       // stable kebab-case id, e.g. "send-outside-compute"
  std::string detail;     // full human-readable diagnostic
  PartitionId partition = kInvalidPartition;
  Timestep timestep = -1;
  std::int32_t superstep = -1;
  std::uint64_t flow_id = 0;  // trace flow of the offending batch; 0 = n/a
};

// Called on the thread that detected the violation. The default handler
// (installed when none is set) logs the diagnostic and aborts. A handler
// that returns lets the checker continue best-effort (used by tests).
using ViolationHandler = std::function<void(const Violation&)>;
void setViolationHandler(ViolationHandler handler);  // empty = default
void clearViolationHandler();

class BspChecker {
 public:
  explicit BspChecker(std::uint32_t num_partitions);

  // --- coordinator-side hooks (between rounds) -----------------------------
  void beginTimestep(Timestep t);
  void beginSuperstep(std::int32_t s);
  // Messages injected into an inbox before superstep 0 (seeds, inter-
  // timestep traffic).
  void onInject(std::uint64_t messages, std::uint64_t bytes);
  // The barrier delivery. `leftover_messages` is what still sat undrained in
  // inboxes when deliver() recycled them (abandoned traffic);
  // `leftover_flow` is the trace flow id of one such batch, 0 if none.
  void onDeliver(std::uint64_t messages, std::uint64_t bytes,
                 std::uint64_t leftover_messages, std::uint64_t leftover_flow);
  // The engine reset the fabric (superstep-cap abort): forgive everything
  // currently in flight.
  void onReset();
  // The engine rolled back to a checkpoint after a fault. A killed worker
  // may have died inside its compute phase (round entered, never exited)
  // and in-flight traffic was dropped: close the open phases, re-pair the
  // round counters and re-baseline the conservation accounting. Cumulative
  // delivered totals are kept — the bus registry counters and the checker
  // increment together at delivery, so registry reconciliation stays valid
  // across a recovery.
  void onRecovery();
  // End of the run: all accounting must be back to zero, and — when
  // reconciliation was requested — the checker's cumulative delivered
  // counts must equal the MetricsRegistry's delta.
  void endRun();

  // Compare cumulative delivered traffic against the process-wide
  // "bus.messages_delivered" / "bus.bytes_delivered" counters at endRun().
  // Only valid when this checker's bus is the sole active bus in the
  // process (the serial engine path).
  void enableRegistryReconciliation();

  // --- async-schedule legality mode ----------------------------------------
  // Under the dependency-driven schedule, a superstep is a *wave*: only
  // ready partitions run, and delivery happens at the wave seal instead of
  // a global barrier. The BSP rules above still hold (pairing is
  // per-partition and conservation is aggregate), but two new failure
  // modes appear that BSP cannot exhibit: the scheduler double-scheduling
  // a partition within one wave, and the readiness tracker skipping a
  // partition that the bus still holds messages for. Async mode arms both.
  void enableAsyncMode();
  // The engine skipped partition p this wave; `inbox_pending` is what the
  // bus actually holds for p (ground truth, independent of the tracker).
  void onSkipRound(PartitionId p, std::uint64_t inbox_pending);

  // --- worker-side hooks (inside a round) ----------------------------------
  void enterCompute(PartitionId p);
  void exitCompute(PartitionId p);
  // The engine is about to run a compute unit (subgraph or vertex).
  // was_halted = its halt flag before the engine cleared it; reactivated =
  // the engine's reason for waking it (superstep 0 or pending messages).
  void onComputeUnit(PartitionId p, std::uint64_t unit_id, bool was_halted,
                     bool reactivated);
  void onSend(PartitionId from, PartitionId to, std::uint64_t bytes);
  // A worker drained `messages` delivered to it. stamp_* identify when the
  // batch was delivered: the (timestep, superstep) recorded at delivery,
  // superstep -1 for injected seeds. flow_id links to the batch's trace
  // flow (0 = untracked).
  void onConsume(PartitionId p, std::uint64_t messages, Timestep stamp_t,
                 std::int32_t stamp_s, std::uint64_t flow_id);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] Timestep timestep() const {
    return timestep_.load(std::memory_order_relaxed);  // tsg:mo(introspection read; exactness not required)
  }
  [[nodiscard]] std::int32_t superstep() const {
    return superstep_.load(std::memory_order_relaxed);  // tsg:mo(introspection read; exactness not required)
  }
  [[nodiscard]] std::uint64_t violationCount() const {
    return violations_.load(std::memory_order_relaxed);  // tsg:mo(introspection read; exactness not required)
  }

 private:
  void violate(const char* rule, PartitionId p, std::uint64_t flow_id,
               std::string detail);
  // Zero the per-superstep accounting after a violation so one defect does
  // not cascade into conservation noise.
  void rebaseline();

  struct PartitionState {
    std::atomic<bool> in_compute{false};
    std::atomic<std::uint64_t> rounds_entered{0};
    std::atomic<std::uint64_t> rounds_exited{0};
    // Async mode: entries since the last wave/phase boundary (reset at
    // each beginSuperstep); > 1 means the scheduler ran the partition
    // twice before the seal.
    std::atomic<std::uint64_t> entered_this_wave{0};
  };

  std::vector<PartitionState> parts_;
  std::atomic<Timestep> timestep_{-1};
  std::atomic<std::int32_t> superstep_{-1};

  // Per-superstep conservation (reset at each onDeliver).
  std::atomic<std::uint64_t> sent_messages_{0};
  std::atomic<std::uint64_t> sent_bytes_{0};
  // Delivered or injected but not yet consumed.
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> consumed_{0};

  // Run-cumulative, for registry reconciliation.
  std::uint64_t total_delivered_messages_ = 0;
  std::uint64_t total_delivered_bytes_ = 0;
  bool reconcile_registry_ = false;
  std::uint64_t registry_messages_base_ = 0;
  std::uint64_t registry_bytes_base_ = 0;
  bool async_mode_ = false;

  std::atomic<std::uint64_t> violations_{0};
};

}  // namespace check
}  // namespace tsg
