#include "check/digest.h"

namespace tsg {
namespace check {

void Digest::addU64s(const std::vector<std::uint64_t>& values) {
  addVector(values, [](Digest& d, std::uint64_t v) { d.addU64(v); });
}

void Digest::addI64s(const std::vector<std::int64_t>& values) {
  addVector(values, [](Digest& d, std::int64_t v) { d.addI64(v); });
}

void Digest::addDoubles(const std::vector<double>& values) {
  addVector(values, [](Digest& d, double v) { d.addDouble(v); });
}

void Digest::addStrings(const std::vector<std::string>& values) {
  addVector(values, [](Digest& d, const std::string& v) { d.addString(v); });
}

std::string Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        kHex[(hash_ >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

}  // namespace check
}  // namespace tsg
