#include "check/determinism.h"

#include <sstream>

#include "common/perturb.h"
#include "common/status.h"

namespace tsg {
namespace check {

DeterminismReport checkDeterminism(
    const DeterminismOptions& options,
    const std::function<std::string(std::int32_t)>& run_and_digest) {
  TSG_CHECK(options.runs >= 1);
  DeterminismReport report;
  report.runs.reserve(static_cast<std::size_t>(options.runs));
  for (std::int32_t i = 0; i < options.runs; ++i) {
    DeterminismReport::Run run;
    run.perturb_seed = options.seed + static_cast<std::uint64_t>(i);
    setPerturbation(run.perturb_seed);
    run.digest = run_and_digest(i);
    clearPerturbation();
    report.runs.push_back(run);
    if (report.divergence.empty() && run.digest != report.runs[0].digest) {
      report.deterministic = false;
      std::ostringstream os;
      os << "run " << i << " (perturb seed " << run.perturb_seed
         << ") digest " << run.digest << " != run 0 digest "
         << report.runs[0].digest;
      report.divergence = os.str();
    }
  }
  return report;
}

std::string renderDeterminismReport(const DeterminismReport& report,
                                    std::string_view label) {
  std::ostringstream os;
  os << "determinism check: " << label << "\n";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const auto& run = report.runs[i];
    os << "  run " << i << "  seed " << run.perturb_seed << "  digest "
       << run.digest
       << (i > 0 && run.digest != report.runs[0].digest ? "  << DIVERGES"
                                                        : "")
       << "\n";
  }
  if (report.deterministic) {
    os << "  deterministic across " << report.runs.size()
       << " perturbed schedules\n";
  } else {
    os << "  SCHEDULE-DEPENDENT OUTPUT: " << report.divergence << "\n";
  }
  return os.str();
}

}  // namespace check
}  // namespace tsg
