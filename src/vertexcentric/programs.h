// Standard vertex-centric programs (Pregel's canonical examples), used as
// the Giraph baseline in Fig. 5b and in cross-engine correctness tests.
#pragma once

#include <limits>

#include "vertexcentric/engine.h"

namespace tsg {
namespace vertexcentric {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Single-source shortest path: value = best known distance; relax incoming
// messages, propagate value + w(e) along out-edges. On an unweighted graph
// this degenerates to BFS, as the paper notes for its Giraph runs (§IV-C).
class SsspVertexProgram final : public VertexProgram {
 public:
  explicit SsspVertexProgram(VertexIndex source) : source_(source) {}

  void compute(VertexContext& ctx) override {
    double best = ctx.value();
    if (ctx.superstep() == 0) {
      best = ctx.vertex() == source_ ? 0.0 : kInf;
      ctx.setValue(best);
    }
    bool improved = ctx.superstep() == 0 && best < kInf;
    for (const double m : ctx.messages()) {
      if (m < best) {
        best = m;
        improved = true;
      }
    }
    if (improved) {
      ctx.setValue(best);
      for (const auto& oe : ctx.graphTemplate().outEdges(ctx.vertex())) {
        ctx.sendTo(oe.dst, best + ctx.edgeWeight(oe.edge));
      }
    }
    ctx.voteToHalt();
  }

 private:
  VertexIndex source_;
};

// Breadth-first level assignment from a source vertex.
class BfsVertexProgram final : public VertexProgram {
 public:
  explicit BfsVertexProgram(VertexIndex source) : source_(source) {}

  void compute(VertexContext& ctx) override {
    const bool unreached = ctx.superstep() == 0 || ctx.value() >= kInf;
    bool discovered = false;
    if (ctx.superstep() == 0) {
      ctx.setValue(ctx.vertex() == source_ ? 0.0 : kInf);
      discovered = ctx.vertex() == source_;
    } else if (unreached && !ctx.messages().empty()) {
      double level = kInf;
      for (const double m : ctx.messages()) {
        level = std::min(level, m);
      }
      ctx.setValue(level);
      discovered = true;
    }
    if (discovered) {
      for (const auto& oe : ctx.graphTemplate().outEdges(ctx.vertex())) {
        ctx.sendTo(oe.dst, ctx.value() + 1.0);
      }
    }
    ctx.voteToHalt();
  }

 private:
  VertexIndex source_;
};

}  // namespace vertexcentric
}  // namespace tsg
