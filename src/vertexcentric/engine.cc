#include "vertexcentric/engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "check/bsp_checker.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "profile/profiler.h"
#include "runtime/cluster.h"
#include "runtime/fault_injector.h"

namespace tsg {
namespace vertexcentric {

struct VertexMessage {
  VertexIndex dst;
  double value;
};

// Per-partition worker state; thread-confined during a round, drained by
// the coordinator between rounds.
struct VcWorker {
  const PartitionedGraph* pg = nullptr;
  PartitionId partition = 0;
  std::vector<std::vector<VertexMessage>> outbox;  // by destination partition
  std::vector<VertexMessage> incoming;
  // Messages per local vertex for the current superstep.
  std::vector<std::vector<double>> vertex_msgs;
  std::vector<std::uint8_t> has_msgs;
  std::int64_t send_ns = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t vertices_computed = 0;
  // Protocol checking (null = off): this engine's swap-based exchange plays
  // the role MessageBus plays elsewhere, so it reports to the same checker.
  check::BspChecker* checker = nullptr;
  std::int32_t incoming_stamp_s = -1;  // superstep incoming was delivered at
};

void VertexContext::sendTo(VertexIndex dst, double value) {
  auto& worker = *worker_;
  ScopedCpuTimer timer(worker.send_ns);
  const PartitionId to = worker.pg->partitionOfVertex(dst);
  if (worker.checker != nullptr) {
    worker.checker->onSend(worker.partition, to, sizeof(VertexMessage));
  }
  worker.outbox[to].push_back({dst, value});
  ++worker.msgs_sent;
  worker.bytes_sent += sizeof(VertexMessage);
  if (Profiler::enabled()) [[unlikely]] {
    // This engine has no timesteps; everything lands on row 0.
    Profiler::global().recordSend(worker.pg->subgraphOfVertex(vertex_),
                                  worker.pg->subgraphOfVertex(dst), 0,
                                  sizeof(VertexMessage));
  }
}

VertexCentricEngine::VertexCentricEngine(const PartitionedGraph& pg)
    : pg_(pg) {}

VcResult VertexCentricEngine::run(
    VertexProgram& program, const VcConfig& config,
    const std::function<double(VertexIndex)>& initial_value) {
  const GraphTemplate& tmpl = pg_.graphTemplate();
  const auto k = pg_.numPartitions();
  const std::size_t n = tmpl.numVertices();
  TSG_CHECK(config.edge_weights.empty() ||
            config.edge_weights.size() == tmpl.numEdges());

  std::vector<double> values(n);
  std::vector<std::uint8_t> halted(n, 0);
  for (VertexIndex v = 0; v < n; ++v) {
    values[v] = initial_value(v);
  }

  std::vector<VcWorker> workers(k);
  for (PartitionId p = 0; p < k; ++p) {
    auto& w = workers[p];
    w.pg = &pg_;
    w.partition = p;
    w.outbox.resize(k);
    const std::size_t local = pg_.partition(p).vertices.size();
    w.vertex_msgs.resize(local);
    w.has_msgs.assign(local, 0);
  }

  VcResult result;
  result.stats = RunStats(k);
  Tracer::setCurrentThreadName("coordinator");
  TraceSpan run_span("vc", "vc.run");
  if (Profiler::enabled()) {
    Profiler::global().beginRun(pg_, 0, 1);
  }
  const auto metrics_before = MetricsRegistry::global().snapshot();
  const auto hists_before = MetricsRegistry::global().histogramSnapshot();
  Stopwatch wall;
  Cluster cluster(k);

  // Protocol checking: one checker per run; no registry reconciliation (the
  // bus.* counters belong to MessageBus, which this engine does not use).
  std::unique_ptr<check::BspChecker> checker;
  if (check::enabled()) {
    checker = std::make_unique<check::BspChecker>(k);
    checker->beginTimestep(0);
    for (auto& w : workers) {
      w.checker = checker.get();
    }
  }

  std::int32_t s = 0;
  std::int32_t recoveries = 0;

  // Runs one barriered round; a worker killed by fault injection surfaces
  // here as RecoveryNeeded (same contract as the TI-BSP engines).
  const auto runRound = [&cluster](const std::function<void(PartitionId)>& job)
      -> const std::vector<Cluster::RoundTiming>& {
    const auto& timings = cluster.run(job);
    if (cluster.hasFaults()) [[unlikely]] {
      std::string detail;
      for (const auto& f : cluster.takeFaults()) {
        if (!detail.empty()) {
          detail += "; ";
        }
        detail += f.detail;
      }
      throw fault::RecoveryNeeded(std::move(detail));
    }
    return timings;
  };

  // One superstep; returns false once the BSP quiesced or hit the cap.
  // This engine has no timesteps, so fault filters use timestep 0.
  const auto runSuperstep = [&]() -> bool {
    TraceSpan superstep_span("vc", "vc.superstep", "s", s);
    if (checker != nullptr) {
      checker->beginSuperstep(s);
    }
    const auto& timings = runRound([&, s](PartitionId p) {
      auto& w = workers[p];
      auto& inj = fault::FaultInjector::global();
      if (w.checker != nullptr) {
        w.checker->enterCompute(p);
        if (!w.incoming.empty()) {
          w.checker->onConsume(p, w.incoming.size(), 0, w.incoming_stamp_s,
                               0);
        }
      }
      // No GoFS provider here; the slice-load site maps to this engine's
      // superstep-0 input consumption so the fault matrix covers all sites.
      if (s == 0 && inj.armed() &&
          inj.fire(fault::Site::kSliceLoad, p, 0, fault::Action::kKill))
          [[unlikely]] {
        throw fault::WorkerFault(p, 0, fault::Site::kSliceLoad);
      }
      const Partition& part = pg_.partition(p);
      // Distribute incoming messages to per-vertex lists, combining if
      // configured (Giraph's MinimumDoubleCombiner analog).
      for (const auto& msg : w.incoming) {
        const std::uint32_t local = pg_.localIndexOfVertex(msg.dst);
        auto& list = w.vertex_msgs[local];
        if (config.combiner == Combiner::kMin && !list.empty()) {
          list[0] = std::min(list[0], msg.value);
        } else {
          list.push_back(msg.value);
        }
        w.has_msgs[local] = 1;
      }
      w.incoming.clear();
      if (inj.armed()) [[unlikely]] {
        if (const auto spec = inj.fire(fault::Site::kCompute, p, 0)) {
          if (spec->action == fault::Action::kKill) {
            throw fault::WorkerFault(p, 0, fault::Site::kCompute);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(spec->delay_us));
        }
      }

      VertexContext ctx;
      ctx.superstep_ = s;
      ctx.tmpl_ = &tmpl;
      ctx.edge_weights_ = &config.edge_weights;
      ctx.worker_ = &w;
      for (std::uint32_t i = 0; i < part.vertices.size(); ++i) {
        const VertexIndex v = part.vertices[i];
        const bool active = s == 0 || w.has_msgs[i] != 0 || halted[v] == 0;
        if (!active) {
          continue;
        }
        if (w.checker != nullptr) {
          w.checker->onComputeUnit(p, v, halted[v] != 0,
                                   s == 0 || w.has_msgs[i] != 0);
        }
        halted[v] = 0;  // must re-vote to stay halted
        ctx.vertex_ = v;
        ctx.value_ = &values[v];
        ctx.halted_ = &halted[v];
        ctx.messages_ = w.vertex_msgs[i];
        if (Profiler::enabled()) [[unlikely]] {
          auto& prof = Profiler::global();
          const std::uint64_t msgs_before = w.msgs_sent;
          const std::int64_t unit_start = steadyNowNs();
          program.compute(ctx);
          const std::int64_t unit_ns = steadyNowNs() - unit_start;
          prof.recordCompute(pg_.subgraphOfVertex(v), 0, unit_ns);
          if (w.vertices_computed % prof.sampleEvery() == 0) {
            prof.recordVertexSample(p, v, unit_ns, w.msgs_sent - msgs_before);
          }
        } else {
          program.compute(ctx);
        }
        ++w.vertices_computed;
        w.vertex_msgs[i].clear();
        w.has_msgs[i] = 0;
      }
      if (inj.armed() &&
          inj.fire(fault::Site::kBarrier, p, 0, fault::Action::kKill))
          [[unlikely]] {
        // Dies with the compute phase still open; onRecovery re-pairs it.
        throw fault::WorkerFault(p, 0, fault::Site::kBarrier);
      }
      if (w.checker != nullptr) {
        w.checker->exitCompute(p);
      }
    });

    // Coordinator: build the record and exchange outboxes.
    SuperstepRecord rec;
    rec.timestep = 0;
    rec.superstep = s;
    rec.parts.resize(k);
    for (PartitionId p = 0; p < k; ++p) {
      auto& w = workers[p];
      auto& ps = rec.parts[p];
      ps.send_ns = std::exchange(w.send_ns, 0);
      ps.compute_ns =
          std::max<std::int64_t>(0, timings[p].busy_ns - ps.send_ns);
      ps.sync_ns = timings[p].sync_ns;
      ps.messages_sent = std::exchange(w.msgs_sent, 0);
      ps.bytes_sent = std::exchange(w.bytes_sent, 0);
      ps.subgraphs_computed = std::exchange(w.vertices_computed, 0);
    }
    auto& registry = MetricsRegistry::global();
    {
      // Delivery faults hit the whole exchange, so only wildcard-partition
      // specs match. A drop discards every outbox and forces a restart; the
      // aborted attempt's record stays in RunStats.
      auto& inj = fault::FaultInjector::global();
      if (inj.armed()) [[unlikely]] {
        if (const auto spec =
                inj.fire(fault::Site::kDeliver, kInvalidPartition, 0)) {
          if (spec->action == fault::Action::kDrop) {
            for (auto& w : workers) {
              for (auto& box : w.outbox) {
                box.clear();
              }
            }
            result.stats.addSuperstep(std::move(rec));
            throw fault::RecoveryNeeded("delivery exchange dropped at superstep " +
                                        std::to_string(s));
          }
          registry.counter("fault.delivery_delays").increment();
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec->delay_us));
        }
      }
    }
    auto& h_batch = registry.histogram("vc.batch_messages");
    std::uint64_t delivered = 0;
    for (PartitionId p = 0; p < k; ++p) {
      for (PartitionId q = 0; q < k; ++q) {
        auto& box = workers[p].outbox[q];
        if (!box.empty()) {
          h_batch.record(box.size());
        }
        delivered += box.size();
        rec.delivered_bytes += box.size() * sizeof(VertexMessage);
        if (p != q) {
          rec.cross_partition_messages += box.size();
          rec.cross_partition_bytes += box.size() * sizeof(VertexMessage);
        }
        auto& inbox = workers[q].incoming;
        if (inbox.empty()) {
          // Whole-vector splice; the swap also recycles the inbox's old
          // capacity back into the outbox slot.
          std::swap(inbox, box);
        } else {
          inbox.insert(inbox.end(), std::make_move_iterator(box.begin()),
                       std::make_move_iterator(box.end()));
          box.clear();
        }
      }
    }
    rec.delivered_messages = delivered;
    if (checker != nullptr) {
      // The swap loop above is this engine's barrier delivery; nothing is
      // ever left undrained (incoming is cleared at every round start).
      for (auto& w : workers) {
        w.incoming_stamp_s = s;
      }
      checker->onDeliver(delivered, delivered * sizeof(VertexMessage), 0, 0);
    }
    traceCounter("vc.delivered_messages", static_cast<std::int64_t>(delivered));
    {
      registry.counter("vc.supersteps").increment();
      // Live-progress gauge (shared series name with the TI engines so the
      // telemetry consumers need no per-engine cases).
      registry.gauge("engine.current_superstep")
          .set(static_cast<std::int64_t>(s));
      std::uint64_t computed = 0;
      auto& h_compute = registry.histogram("vc.superstep_compute_ns");
      auto& h_send = registry.histogram("vc.superstep_send_ns");
      auto& h_sync = registry.histogram("vc.superstep_sync_ns");
      for (const auto& ps : rec.parts) {
        computed += ps.subgraphs_computed;
        h_compute.record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, ps.compute_ns)));
        h_send.record(
            static_cast<std::uint64_t>(std::max<std::int64_t>(0, ps.send_ns)));
        h_sync.record(
            static_cast<std::uint64_t>(std::max<std::int64_t>(0, ps.sync_ns)));
      }
      registry.counter("vc.vertices_computed").add(computed);
      registry.counter("vc.messages_delivered").add(delivered);
    }
    result.stats.addSuperstep(std::move(rec));

    const bool all_halted =
        std::all_of(halted.begin(), halted.end(),
                    [](std::uint8_t h) { return h != 0; });
    ++s;
    if (all_halted && delivered == 0) {
      return false;
    }
    if (s >= config.max_supersteps) {
      if (checker != nullptr) {
        // Cap abort abandons delivered-but-unconsumed traffic by design.
        checker->onReset();
      }
      return false;
    }
    return true;
  };

  bool done = false;
  while (!done) {
    try {
      while (runSuperstep()) {
      }
      done = true;
    } catch (const fault::RecoveryNeeded& fault_cause) {
      // A single BSP carries no inter-timestep state, so recovery is a full
      // restart: re-seed values and rerun from superstep 0. Deterministic
      // programs converge to the same answer as a fault-free run.
      ++recoveries;
      TSG_CHECK_MSG(recoveries <= config.max_recoveries,
                    "recovery limit exhausted; last fault: " +
                        std::string(fault_cause.what()));
      TraceSpan rec_span("vc", "vc.recovery");
      TSG_LOG(Warn) << "restarting after fault (" << recoveries << "/"
                    << config.max_recoveries << "): " << fault_cause.what();
      MetricsRegistry::global().counter("engine.recoveries").increment();
      if (checker != nullptr) {
        checker->onRecovery();
      }
      cluster.respawnDead();
      for (auto& w : workers) {
        for (auto& box : w.outbox) {
          box.clear();
        }
        w.incoming.clear();
        for (auto& msgs : w.vertex_msgs) {
          msgs.clear();
        }
        std::fill(w.has_msgs.begin(), w.has_msgs.end(), 0);
        w.send_ns = 0;
        w.msgs_sent = 0;
        w.bytes_sent = 0;
        w.vertices_computed = 0;
        w.incoming_stamp_s = -1;
      }
      for (VertexIndex v = 0; v < n; ++v) {
        values[v] = initial_value(v);
      }
      std::fill(halted.begin(), halted.end(), 0);
      if (Profiler::enabled()) {
        // Full restart: drop the aborted attempt's attributed compute.
        Profiler::global().resetRowsFrom(0);
      }
      s = 0;
    }
  }
  if (checker != nullptr) {
    checker->endRun();
  }

  result.stats.setWallClockNs(wall.elapsedNs());
  result.stats.setMetrics(
      snapshotDelta(metrics_before, MetricsRegistry::global().snapshot()));
  result.stats.setHistograms(histogramDelta(
      hists_before, MetricsRegistry::global().histogramSnapshot()));
  if (Profiler::enabled()) {
    result.stats.setAttribution(Profiler::global().take());
  }
  result.values = std::move(values);
  result.supersteps = s;
  return result;
}

}  // namespace vertexcentric
}  // namespace tsg
