// Vertex-centric TI-BSP — the re-engineering the paper hypothesizes about
// in §IV-C ("Giraph does not natively support the TI-BSP model or message
// passing between instances, though with a fair bit of engineering, it is
// possible") and §VI ("these abstractions can be extended to other
// partition- and vertex-centric programming frameworks too").
//
// The outer loop iterates graph instances exactly like the subgraph-centric
// TiBspEngine (sequentially dependent pattern); the inner BSP runs per
// VERTEX with double-valued messages. Per-vertex algorithm state persists
// across timesteps inside the program (vertices are owned by fixed
// partitions, so shared arrays are race-free), and per-vertex messages can
// be deferred to the next timestep with sendToNextTimestep.
//
// The paper bounds a TI-BSP Giraph port at [τ, n·τ] where τ is one
// vertex-centric SSSP; bench_fig5b_giraph measures our port against that
// prediction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/serialize.h"
#include "core/engine.h"  // Schedule
#include "gofs/instance_provider.h"
#include "partition/partitioned_graph.h"
#include "metrics/stats.h"

namespace tsg {

class CheckpointStore;  // gofs/checkpoint.h

namespace vertexcentric {

class TemporalVertexContext;

// User logic invoked per active vertex, per superstep, per timestep.
class TemporalVertexProgram {
 public:
  virtual ~TemporalVertexProgram() = default;
  virtual void compute(TemporalVertexContext& ctx) = 0;
  // Invoked once per owned vertex when a timestep's BSP quiesces.
  virtual void endOfTimestep(VertexIndex v, Timestep t) {
    (void)v;
    (void)t;
  }
  // Checkpoint hooks (cf. TiBspProgram). Per-vertex algorithm state lives
  // in the program across timesteps, so a program used with a checkpoint
  // store must round-trip every member that outlives one timestep.
  virtual void saveState(BinaryWriter& w) const { (void)w; }
  virtual Status loadState(BinaryReader& r) {
    (void)r;
    return Status::ok();
  }
};

struct TemporalVcConfig {
  Timestep first_timestep = 0;
  std::int32_t num_timesteps = -1;  // -1 = all instances
  std::int32_t max_supersteps_per_timestep = 100000;

  // kAsync runs each timestep's BSP as dependency-driven waves (see
  // TiBspConfig::schedule): partitions whose vertices all halted and whose
  // inboxes are empty skip rounds, stragglers get their tasks stolen.
  // Output is identical to kBsp by construction.
  Schedule schedule = Schedule::kBsp;

  // Fault tolerance (see gofs/checkpoint.h and TiBspConfig). The single
  // shared program is restored in place via loadState on recovery; null
  // means faults abort.
  CheckpointStore* checkpoint_store = nullptr;
  std::int32_t max_recoveries = 8;

  // Streaming ingestion (cf. TiBspConfig::stream): when set, the timestep
  // loop blocks on stream->awaitTimestep(t) before executing t. The
  // vertex-centric engine has no per-subgraph skip (its compute units are
  // vertices), so the dirty tracker is unused here.
  TimestepStream* stream = nullptr;
};

struct TemporalVcResult {
  RunStats stats;
  Timestep timesteps_executed = 0;
};

class TemporalVertexEngine {
 public:
  TemporalVertexEngine(const PartitionedGraph& pg, InstanceProvider& provider);

  TemporalVcResult run(TemporalVertexProgram& program,
                       const TemporalVcConfig& config);

 private:
  const PartitionedGraph& pg_;
  InstanceProvider& provider_;
};

class TemporalVertexContext {
 public:
  [[nodiscard]] VertexIndex vertex() const { return vertex_; }
  [[nodiscard]] Timestep timestep() const { return timestep_; }
  [[nodiscard]] std::int32_t superstep() const { return superstep_; }
  [[nodiscard]] const GraphTemplate& graphTemplate() const { return *tmpl_; }
  [[nodiscard]] std::int64_t delta() const { return delta_; }

  [[nodiscard]] std::span<const double> messages() const { return messages_; }

  // Instance edge attribute value (edge must leave an owned vertex).
  [[nodiscard]] double edgeDouble(std::size_t attr, EdgeIndex e) const;

  // Within this timestep's BSP.
  void sendTo(VertexIndex dst, double value);
  // To a vertex at superstep 0 of the next timestep.
  void sendToNextTimestep(VertexIndex dst, double value);
  void voteToHalt() { *halted_ = 1; }

 private:
  friend class TemporalVertexEngine;
  friend struct TvWorker;

  VertexIndex vertex_ = 0;
  Timestep timestep_ = 0;
  std::int32_t superstep_ = 0;
  const GraphTemplate* tmpl_ = nullptr;
  std::int64_t delta_ = 1;
  std::uint8_t* halted_ = nullptr;
  std::span<const double> messages_;
  struct TvWorker* worker_ = nullptr;
};

}  // namespace vertexcentric
}  // namespace tsg
