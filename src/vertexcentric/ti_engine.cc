#include "vertexcentric/ti_engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "check/bsp_checker.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "gofs/checkpoint.h"
#include "profile/profiler.h"
#include "runtime/cluster.h"
#include "runtime/fault_injector.h"
#include "runtime/ready_tracker.h"

namespace tsg {
namespace vertexcentric {

namespace {
struct TvMessage {
  VertexIndex dst;
  double value;
};

// Adapter so the wave callbacks can live as lambdas inside run() instead of
// a second engine class; see the subgraph engine's WaveDriver for the
// sealing contract.
class CallbackWaveDriver final : public AsyncCluster::Driver {
 public:
  std::function<void(PartitionId, const AsyncCluster::TaskInfo&)> run_task;
  std::function<std::vector<PartitionId>(std::int32_t)> seal;

  void runTask(PartitionId p, const AsyncCluster::TaskInfo& info) override {
    run_task(p, info);
  }
  std::vector<PartitionId> sealWave(std::int32_t s) override {
    return seal(s);
  }
};
}  // namespace

// Per-partition worker state; thread-confined during a round.
struct TvWorker {
  const PartitionedGraph* pg = nullptr;
  const PartitionInstanceData* instance = nullptr;
  PartitionId partition = 0;
  std::vector<std::vector<TvMessage>> outbox;  // by destination partition
  std::vector<TvMessage> incoming;
  std::vector<TvMessage> next_timestep;  // deferred to t+1
  std::vector<std::vector<double>> vertex_msgs;  // by local vertex index
  std::vector<std::uint8_t> has_msgs;
  std::int64_t send_ns = 0;
  std::int64_t load_ns = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t vertices_computed = 0;
  // Protocol checking (null = off). The stamps record when incoming was
  // filled: (t, s) at the barrier exchange, (t, -1) for inter-timestep
  // seeds injected before superstep 0.
  check::BspChecker* checker = nullptr;
  Timestep incoming_stamp_t = -1;
  std::int32_t incoming_stamp_s = -1;
};

double TemporalVertexContext::edgeDouble(std::size_t attr,
                                         EdgeIndex e) const {
  const auto& worker = *worker_;
  TSG_CHECK(worker.instance != nullptr);
  TSG_CHECK(attr < worker.instance->edge_cols.size());
  TSG_CHECK(worker.pg->partitionOfVertex(tmpl_->edgeSrc(e)) ==
            worker.partition);
  return worker.instance->edge_cols[attr]
      .asDouble()[worker.pg->localIndexOfEdge(e)];
}

void TemporalVertexContext::sendTo(VertexIndex dst, double value) {
  auto& worker = *worker_;
  ScopedCpuTimer timer(worker.send_ns);
  const PartitionId to = worker.pg->partitionOfVertex(dst);
  if (worker.checker != nullptr) {
    worker.checker->onSend(worker.partition, to, sizeof(TvMessage));
  }
  worker.outbox[to].push_back({dst, value});
  ++worker.msgs_sent;
  worker.bytes_sent += sizeof(TvMessage);
  if (Profiler::enabled()) [[unlikely]] {
    Profiler::global().recordSend(worker.pg->subgraphOfVertex(vertex_),
                                  worker.pg->subgraphOfVertex(dst),
                                  timestep_, sizeof(TvMessage));
  }
}

void TemporalVertexContext::sendToNextTimestep(VertexIndex dst,
                                               double value) {
  auto& worker = *worker_;
  ScopedCpuTimer timer(worker.send_ns);
  // Deliberately not reported to the protocol checker here: this is the
  // carried (inter-timestep) channel. The checker accounts for it as an
  // injection when the coordinator seeds it before t+1's superstep 0.
  worker.next_timestep.push_back({dst, value});
  ++worker.msgs_sent;
  worker.bytes_sent += sizeof(TvMessage);
  if (Profiler::enabled()) [[unlikely]] {
    Profiler::global().recordSend(worker.pg->subgraphOfVertex(vertex_),
                                  worker.pg->subgraphOfVertex(dst),
                                  timestep_, sizeof(TvMessage));
  }
}

TemporalVertexEngine::TemporalVertexEngine(const PartitionedGraph& pg,
                                           InstanceProvider& provider)
    : pg_(pg), provider_(provider) {}

TemporalVcResult TemporalVertexEngine::run(TemporalVertexProgram& program,
                                           const TemporalVcConfig& config) {
  const GraphTemplate& tmpl = pg_.graphTemplate();
  const auto k = pg_.numPartitions();
  const std::size_t n = tmpl.numVertices();

  const Timestep first = config.first_timestep;
  TSG_CHECK(first >= 0);
  const auto available =
      static_cast<std::int64_t>(provider_.numInstances()) - first;
  TSG_CHECK(available >= 0);
  const auto count = static_cast<std::int32_t>(
      config.num_timesteps < 0
          ? available
          : std::min<std::int64_t>(config.num_timesteps, available));

  std::vector<std::uint8_t> halted(n, 0);
  std::vector<TvWorker> workers(k);
  for (PartitionId p = 0; p < k; ++p) {
    auto& w = workers[p];
    w.pg = &pg_;
    w.partition = p;
    w.outbox.resize(k);
    const std::size_t local = pg_.partition(p).vertices.size();
    w.vertex_msgs.resize(local);
    w.has_msgs.assign(local, 0);
  }

  TemporalVcResult result;
  result.stats = RunStats(k);
  Tracer::setCurrentThreadName("coordinator");
  TraceSpan run_span("vc", "tvc.run", "timesteps", count);
  if (Profiler::enabled()) {
    Profiler::global().beginRun(pg_, first, count);
  }
  const auto metrics_before = MetricsRegistry::global().snapshot();
  const auto hists_before = MetricsRegistry::global().histogramSnapshot();
  Stopwatch wall;
  const bool use_async = config.schedule == Schedule::kAsync;
  std::unique_ptr<Cluster> bsp_cluster;
  std::unique_ptr<AsyncCluster> async_cluster;
  if (use_async) {
    async_cluster = std::make_unique<AsyncCluster>(k);
  } else {
    bsp_cluster = std::make_unique<Cluster>(k);
  }

  // Protocol checking: one checker per run; no registry reconciliation (the
  // bus.* counters belong to MessageBus, which this engine does not use).
  std::unique_ptr<check::BspChecker> checker;
  if (check::enabled()) {
    checker = std::make_unique<check::BspChecker>(k);
    for (auto& w : workers) {
      w.checker = checker.get();
    }
  }

  // Deferred messages from timestep t, routed before t+1's superstep 0.
  std::vector<TvMessage> pending_next;

  CheckpointStore* const store = config.checkpoint_store;
  std::int32_t recoveries = 0;

  // Runs one barriered round; a worker killed by fault injection surfaces
  // here as RecoveryNeeded (same contract as the subgraph engine). Under
  // the async schedule full rounds (end-of-timestep) go through
  // AsyncCluster::runAll, which has the same timing/fault contract.
  const auto runRound = [&](const std::function<void(PartitionId)>& job)
      -> const std::vector<Cluster::RoundTiming>& {
    const auto& timings =
        use_async ? async_cluster->runAll(job) : bsp_cluster->run(job);
    const bool faulted =
        use_async ? async_cluster->hasFaults() : bsp_cluster->hasFaults();
    if (faulted) [[unlikely]] {
      std::string detail;
      const auto faults =
          use_async ? async_cluster->takeFaults() : bsp_cluster->takeFaults();
      for (const auto& f : faults) {
        if (!detail.empty()) {
          detail += "; ";
        }
        detail += f.detail;
      }
      throw fault::RecoveryNeeded(std::move(detail));
    }
    return timings;
  };

  // The cut after `completed`: program state plus deferred messages
  // (TvMessages travel as Checkpoint Messages with an 8-byte payload).
  const auto saveCheckpoint = [&](Timestep completed,
                                  std::int32_t executed) {
    TraceSpan ckpt_span("vc", "tvc.checkpoint", "t", completed);
    Checkpoint ckpt;
    ckpt.timestep = completed;
    ckpt.timesteps_executed = executed;
    ckpt.partitions.resize(1);
    BinaryWriter w;
    program.saveState(w);
    ckpt.partitions[0].program_state = w.takeBuffer();
    ckpt.pending_next.reserve(pending_next.size());
    for (const auto& msg : pending_next) {
      Message m;
      m.dst = msg.dst;
      BinaryWriter pw;
      pw.writeDouble(msg.value);
      m.payload = PayloadBuffer(pw.buffer().data(), pw.buffer().size());
      ckpt.pending_next.push_back(std::move(m));
    }
    const Status saved = store->save(ckpt);
    TSG_CHECK_MSG(saved.isOk(), saved.toString());
    MetricsRegistry::global().counter("engine.checkpoints").increment();
  };

  // One timestep's BSP; throws fault::RecoveryNeeded when a worker dies.
  const auto runTimestep = [&](std::int32_t i) {
    const Timestep t = first + i;
    TraceSpan timestep_span("vc", "tvc.timestep", "t", t);
    if (checker != nullptr) {
      checker->beginTimestep(t);
      if (!pending_next.empty()) {
        checker->onInject(pending_next.size(),
                          pending_next.size() * sizeof(TvMessage));
      }
      for (auto& w : workers) {
        w.incoming_stamp_t = t;
        w.incoming_stamp_s = -1;
      }
    }
    // Seed inter-timestep messages into the owning partitions' inboxes.
    for (auto& msg : pending_next) {
      workers[pg_.partitionOfVertex(msg.dst)].incoming.push_back(msg);
    }
    pending_next.clear();
    std::fill(halted.begin(), halted.end(), 0);

    // Per-partition compute for superstep s — shared verbatim between the
    // barriered loop and the wave tasks, so both schedules replay the same
    // send sequence.
    const auto partition_job = [&, t](PartitionId p, std::int32_t s) {
      auto& w = workers[p];
      auto& inj = fault::FaultInjector::global();
      if (w.checker != nullptr) {
        w.checker->enterCompute(p);
        if (!w.incoming.empty()) {
          w.checker->onConsume(p, w.incoming.size(), w.incoming_stamp_t,
                               w.incoming_stamp_s, 0);
        }
      }
      if (s == 0) {
        if (inj.armed() &&
            inj.fire(fault::Site::kSliceLoad, p, t, fault::Action::kKill))
            [[unlikely]] {
          throw fault::WorkerFault(p, t, fault::Site::kSliceLoad);
        }
        w.instance = &provider_.instanceFor(p, t);
        w.load_ns += provider_.takeLoadNs(p);
      }
      const Partition& part = pg_.partition(p);
      for (const auto& msg : w.incoming) {
        const std::uint32_t local = pg_.localIndexOfVertex(msg.dst);
        w.vertex_msgs[local].push_back(msg.value);
        w.has_msgs[local] = 1;
      }
      w.incoming.clear();
      if (inj.armed()) [[unlikely]] {
        if (const auto spec = inj.fire(fault::Site::kCompute, p, t)) {
          if (spec->action == fault::Action::kKill) {
            throw fault::WorkerFault(p, t, fault::Site::kCompute);
          }
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec->delay_us));
        }
      }

      TemporalVertexContext ctx;
      ctx.timestep_ = t;
      ctx.superstep_ = s;
      ctx.tmpl_ = &tmpl;
      ctx.delta_ = provider_.delta();
      ctx.worker_ = &w;
      for (std::uint32_t l = 0; l < part.vertices.size(); ++l) {
        const VertexIndex v = part.vertices[l];
        const bool active = s == 0 || w.has_msgs[l] != 0 || halted[v] == 0;
        if (!active) {
          continue;
        }
        if (w.checker != nullptr) {
          w.checker->onComputeUnit(p, v, halted[v] != 0,
                                   s == 0 || w.has_msgs[l] != 0);
        }
        halted[v] = 0;
        ctx.vertex_ = v;
        ctx.halted_ = &halted[v];
        ctx.messages_ = w.vertex_msgs[l];
        if (Profiler::enabled()) [[unlikely]] {
          auto& prof = Profiler::global();
          const std::uint64_t msgs_before = w.msgs_sent;
          const std::int64_t unit_start = steadyNowNs();
          program.compute(ctx);
          const std::int64_t unit_ns = steadyNowNs() - unit_start;
          prof.recordCompute(pg_.subgraphOfVertex(v), t, unit_ns);
          if (w.vertices_computed % prof.sampleEvery() == 0) {
            prof.recordVertexSample(p, v, unit_ns, w.msgs_sent - msgs_before);
          }
        } else {
          program.compute(ctx);
        }
        ++w.vertices_computed;
        w.vertex_msgs[l].clear();
        w.has_msgs[l] = 0;
      }
      if (inj.armed() &&
          inj.fire(fault::Site::kBarrier, p, t, fault::Action::kKill))
          [[unlikely]] {
        throw fault::WorkerFault(p, t, fault::Site::kBarrier);
      }
      if (w.checker != nullptr) {
        w.checker->exitCompute(p);
      }
    };

    // Delivery, checker accounting, vc.* metrics and the record commit —
    // shared between the barrier and the wave seal. Takes rec with its
    // parts[] timing rows already filled; returns the delivered count.
    // Throws RecoveryNeeded on an injected drop (rec is discarded: the
    // exchange never happened).
    const auto sealDelivery = [&, t](SuperstepRecord rec,
                                     std::int32_t s) -> std::uint64_t {
      {
        auto& inj = fault::FaultInjector::global();
        if (inj.armed()) [[unlikely]] {
          if (const auto spec =
                  inj.fire(fault::Site::kDeliver, kInvalidPartition, t)) {
            if (spec->action == fault::Action::kDrop) {
              // The exchange is lost in flight; recovery clears the boxes.
              throw fault::RecoveryNeeded(
                  "delivery exchange dropped at timestep " +
                  std::to_string(t) + " superstep " + std::to_string(s));
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(spec->delay_us));
            MetricsRegistry::global()
                .counter("fault.delivery_delays")
                .increment();
          }
        }
      }
      auto& registry = MetricsRegistry::global();
      auto& h_batch = registry.histogram("vc.batch_messages");
      std::uint64_t delivered = 0;
      for (PartitionId p = 0; p < k; ++p) {
        for (PartitionId q = 0; q < k; ++q) {
          auto& box = workers[p].outbox[q];
          if (!box.empty()) {
            h_batch.record(box.size());
          }
          delivered += box.size();
          rec.delivered_bytes += box.size() * sizeof(TvMessage);
          if (p != q) {
            rec.cross_partition_messages += box.size();
            rec.cross_partition_bytes += box.size() * sizeof(TvMessage);
          }
          auto& inbox = workers[q].incoming;
          if (inbox.empty()) {
            // Whole-vector splice; the swap also recycles the inbox's old
            // capacity back into the outbox slot.
            std::swap(inbox, box);
          } else {
            inbox.insert(inbox.end(), std::make_move_iterator(box.begin()),
                         std::make_move_iterator(box.end()));
            box.clear();
          }
        }
      }
      rec.delivered_messages = delivered;
      if (checker != nullptr) {
        // The swap loop above is this engine's barrier delivery; incoming
        // is always fully drained at the next round start.
        for (auto& w : workers) {
          w.incoming_stamp_t = t;
          w.incoming_stamp_s = s;
        }
        checker->onDeliver(delivered, delivered * sizeof(TvMessage), 0, 0);
      }
      traceCounter("vc.delivered_messages",
                   static_cast<std::int64_t>(delivered));
      {
        registry.counter("vc.supersteps").increment();
        // Live-progress gauges (series names shared with the core engine).
        registry.gauge("engine.current_timestep")
            .set(static_cast<std::int64_t>(t));
        registry.gauge("engine.current_superstep")
            .set(static_cast<std::int64_t>(s));
        std::uint64_t computed = 0;
        auto& h_compute = registry.histogram("vc.superstep_compute_ns");
        auto& h_send = registry.histogram("vc.superstep_send_ns");
        auto& h_sync = registry.histogram("vc.superstep_sync_ns");
        for (const auto& ps : rec.parts) {
          computed += ps.subgraphs_computed;
          h_compute.record(static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, ps.compute_ns)));
          h_send.record(static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, ps.send_ns)));
          h_sync.record(static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, ps.sync_ns)));
        }
        registry.counter("vc.vertices_computed").add(computed);
        registry.counter("vc.messages_delivered").add(delivered);
      }
      result.stats.addSuperstep(std::move(rec));
      return delivered;
    };

    std::int32_t s = 0;
    if (!use_async) {
      while (true) {
        TraceSpan superstep_span("vc", "tvc.superstep", "t", t, "s", s);
        if (checker != nullptr) {
          checker->beginSuperstep(s);
        }
        const auto& timings =
            runRound([&, s](PartitionId p) { partition_job(p, s); });

        SuperstepRecord rec;
        rec.timestep = t;
        rec.superstep = s;
        rec.parts.resize(k);
        for (PartitionId p = 0; p < k; ++p) {
          auto& w = workers[p];
          auto& ps = rec.parts[p];
          ps.send_ns = std::exchange(w.send_ns, 0);
          ps.load_ns = std::exchange(w.load_ns, 0);
          ps.compute_ns = std::max<std::int64_t>(
              0, timings[p].busy_ns - ps.send_ns - ps.load_ns);
          ps.sync_ns = timings[p].sync_ns;
          ps.messages_sent = std::exchange(w.msgs_sent, 0);
          ps.bytes_sent = std::exchange(w.bytes_sent, 0);
          ps.subgraphs_computed = std::exchange(w.vertices_computed, 0);
        }
        const std::uint64_t delivered = sealDelivery(std::move(rec), s);

        const bool all_halted =
            std::all_of(halted.begin(), halted.end(),
                        [](std::uint8_t h) { return h != 0; });
        ++s;
        if (all_halted && delivered == 0) {
          break;
        }
        if (s >= config.max_supersteps_per_timestep) {
          if (checker != nullptr) {
            // Cap abort abandons delivered-but-unconsumed traffic by design.
            checker->onReset();
          }
          break;
        }
      }
    } else {
      // Wave schedule: only partitions with pending messages or unhalted
      // vertices run each superstep; the last finisher seals the wave with
      // the same swap-loop exchange. Termination (all halted, nothing
      // delivered) falls out of the tracker: a seal that records universal
      // quiesce and empty inboxes reports terminated().
      if (checker != nullptr) {
        checker->beginSuperstep(0);
      }
      ReadyTracker tracker(static_cast<std::int32_t>(k));
      tracker.beginTimestep();
      std::vector<std::int64_t> busy_ns(k, 0);
      std::vector<std::int64_t> wait_ns(k, 0);
      auto& m_skips =
          MetricsRegistry::global().counter("cluster.barrier_skips");
      CallbackWaveDriver driver;
      driver.run_task = [&](PartitionId p,
                            const AsyncCluster::TaskInfo& info) {
        const std::int64_t cpu_start = threadCpuNowNs();
        partition_job(p, info.wave);
        busy_ns[p] = threadCpuNowNs() - cpu_start;
        wait_ns[p] = info.ready_wait_ns;
      };
      driver.seal = [&](std::int32_t sw) -> std::vector<PartitionId> {
        SuperstepRecord rec;
        rec.timestep = t;
        rec.superstep = sw;
        rec.parts.resize(k);
        for (PartitionId p = 0; p < k; ++p) {
          auto& w = workers[p];
          auto& ps = rec.parts[p];
          ps.send_ns = std::exchange(w.send_ns, 0);
          ps.load_ns = std::exchange(w.load_ns, 0);
          ps.compute_ns = std::max<std::int64_t>(
              0, std::exchange(busy_ns[p], 0) - ps.send_ns - ps.load_ns);
          ps.sync_ns = std::exchange(wait_ns[p], 0);
          ps.messages_sent = std::exchange(w.msgs_sent, 0);
          ps.bytes_sent = std::exchange(w.bytes_sent, 0);
          ps.subgraphs_computed = std::exchange(w.vertices_computed, 0);
          const Partition& part = pg_.partition(p);
          tracker.recordQuiesce(
              p, std::all_of(part.vertices.begin(), part.vertices.end(),
                             [&](VertexIndex v) { return halted[v] != 0; }));
        }
        sealDelivery(std::move(rec), sw);
        s = sw + 1;
        // Post-splice inbox sizes are the ground-truth inbound set for the
        // next wave (partitions that ran drained theirs at task start).
        for (PartitionId p = 0; p < k; ++p) {
          tracker.recordDelivery(
              p, static_cast<std::uint64_t>(workers[p].incoming.size()));
        }
        if (tracker.terminated()) {
          return {};
        }
        if (sw + 1 >= config.max_supersteps_per_timestep) {
          if (checker != nullptr) {
            // Cap abort abandons delivered-but-unconsumed traffic by design.
            checker->onReset();
          }
          return {};
        }
        std::vector<PartitionId> next = tracker.advance();
        if (next.size() < k) {
          m_skips.add(k - static_cast<std::uint64_t>(next.size()));
          if (checker != nullptr) {
            // Cross-check every skip against the actual inbox contents;
            // `next` is ascending, so a two-pointer sweep walks the
            // complement.
            std::size_t j = 0;
            for (PartitionId p = 0; p < k; ++p) {
              if (j < next.size() && next[j] == p) {
                ++j;
                continue;
              }
              checker->onSkipRound(
                  p, static_cast<std::uint64_t>(workers[p].incoming.size()));
            }
          }
        }
        if (checker != nullptr) {
          checker->beginSuperstep(sw + 1);
        }
        return next;
      };
      std::vector<PartitionId> all(k);
      std::iota(all.begin(), all.end(), PartitionId{0});
      async_cluster->runWaves(driver, all, /*first_wave=*/0);
    }

    // End of timestep: per-vertex hook, then collect deferred messages.
    if (checker != nullptr) {
      checker->beginSuperstep(s);
    }
    runRound([&, t](PartitionId p) {
      if (checker != nullptr) {
        checker->enterCompute(p);
      }
      for (const VertexIndex v : pg_.partition(p).vertices) {
        program.endOfTimestep(v, t);
      }
      if (checker != nullptr) {
        checker->exitCompute(p);
      }
    });
    for (auto& w : workers) {
      std::move(w.next_timestep.begin(), w.next_timestep.end(),
                std::back_inserter(pending_next));
      w.next_timestep.clear();
    }
    ++result.timesteps_executed;
  };

  std::int32_t i = 0;
  bool done = false;
  if (store != nullptr) {
    saveCheckpoint(first - 1, 0);  // initial cut: pristine program state
  }
  while (!done) {
    try {
      while (i < count) {
        // Streaming: block until the instance for this timestep is sealed
        // (cf. TiBspEngine's serial loop). False = source ended early.
        if (config.stream != nullptr &&
            !config.stream->awaitTimestep(first + i)) {
          break;
        }
        runTimestep(i);
        if (store != nullptr) {
          saveCheckpoint(first + i, result.timesteps_executed);
        }
        ++i;
      }
      done = true;
    } catch (const fault::RecoveryNeeded& fault_cause) {
      TSG_CHECK_MSG(store != nullptr,
                    std::string("worker fault without a checkpoint store: ") +
                        fault_cause.what());
      ++recoveries;
      TSG_CHECK_MSG(recoveries <= config.max_recoveries,
                    "recovery limit exhausted; last fault: " +
                        std::string(fault_cause.what()));
      TraceSpan rec_span("vc", "tvc.recovery");
      TSG_LOG(Warn) << "recovering from fault (" << recoveries << "/"
                    << config.max_recoveries << "): " << fault_cause.what();
      MetricsRegistry::global().counter("engine.recoveries").increment();
      if (checker != nullptr) {
        checker->onRecovery();
      }
      if (use_async) {
        async_cluster->respawnDead();
      } else {
        bsp_cluster->respawnDead();
      }
      auto loaded = store->loadLatest();
      TSG_CHECK_MSG(loaded.isOk(), loaded.status().toString());
      Checkpoint ckpt = std::move(loaded).value();
      TSG_CHECK(ckpt.partitions.size() == 1);
      BinaryReader state_reader(ckpt.partitions[0].program_state);
      const Status restored = program.loadState(state_reader);
      TSG_CHECK_MSG(restored.isOk(), restored.toString());
      for (auto& w : workers) {
        for (auto& box : w.outbox) {
          box.clear();
        }
        w.incoming.clear();
        w.next_timestep.clear();
        for (auto& msgs : w.vertex_msgs) {
          msgs.clear();
        }
        std::fill(w.has_msgs.begin(), w.has_msgs.end(), 0);
        w.send_ns = 0;
        w.load_ns = 0;
        w.msgs_sent = 0;
        w.bytes_sent = 0;
        w.vertices_computed = 0;
        w.instance = nullptr;
      }
      pending_next.clear();
      for (const auto& m : ckpt.pending_next) {
        BinaryReader payload_reader(
            std::span<const std::uint8_t>(m.payload.data(), m.payload.size()));
        double value = 0;
        const Status read = payload_reader.readDouble(value);
        TSG_CHECK_MSG(read.isOk(), read.toString());
        pending_next.push_back({m.dst, value});
      }
      result.timesteps_executed = ckpt.timesteps_executed;
      if (Profiler::enabled()) {
        // Rolled-back timesteps re-run from the cut; drop their rows.
        Profiler::global().resetRowsFrom(ckpt.timestep + 1);
      }
      i = (ckpt.timestep - first) + 1;
    }
  }
  if (checker != nullptr) {
    checker->endRun();
  }

  result.stats.setWallClockNs(wall.elapsedNs());
  result.stats.setMetrics(
      snapshotDelta(metrics_before, MetricsRegistry::global().snapshot()));
  result.stats.setHistograms(histogramDelta(
      hists_before, MetricsRegistry::global().histogramSnapshot()));
  if (Profiler::enabled()) {
    result.stats.setAttribution(Profiler::global().take());
  }
  return result;
}

}  // namespace vertexcentric
}  // namespace tsg
