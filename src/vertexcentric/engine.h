// Vertex-centric BSP engine — the Apache Giraph / Pregel stand-in used by
// the Fig. 5b baseline comparison.
//
// Same substrate as the subgraph-centric runtime (one worker thread per
// partition, bulk message delivery, barriered supersteps), but the unit of
// computation is a single vertex and messages address vertices. This
// isolates exactly the difference the paper attributes its speedups to:
// a vertex-centric SSSP needs ~graph-diameter supersteps and per-vertex
// message traffic, while the subgraph-centric version runs Dijkstra inside
// each subgraph and needs ~partition-hop supersteps.
//
// Messages carry one double (what Pregel's SSSP/BFS use); an optional
// min-combiner reduces traffic like Giraph's MinimumDoubleCombiner.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "partition/partitioned_graph.h"
#include "metrics/stats.h"

namespace tsg {
namespace vertexcentric {

class VertexContext;

// User logic invoked per active vertex per superstep.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;
  virtual void compute(VertexContext& ctx) = 0;
};

enum class Combiner : std::uint8_t { kNone, kMin };

struct VcConfig {
  Combiner combiner = Combiner::kNone;
  std::int32_t max_supersteps = 100000;
  // Edge weights by template edge index; empty = unweighted (1.0).
  std::vector<double> edge_weights;
  // Fault tolerance: a single BSP carries no inter-timestep state, so
  // recovery is a restart — re-seed values via initial_value and rerun from
  // superstep 0. This caps how many restarts a run tolerates.
  std::int32_t max_recoveries = 8;
};

struct VcResult {
  RunStats stats;
  std::vector<double> values;  // final per-vertex values
  std::int32_t supersteps = 0;
};

class VertexCentricEngine {
 public:
  explicit VertexCentricEngine(const PartitionedGraph& pg);

  // Runs to quiescence. `initial_value(v)` seeds every vertex value;
  // vertices start active.
  VcResult run(VertexProgram& program, const VcConfig& config,
               const std::function<double(VertexIndex)>& initial_value);

 private:
  const PartitionedGraph& pg_;
};

// Context passed to VertexProgram::compute.
class VertexContext {
 public:
  [[nodiscard]] VertexIndex vertex() const { return vertex_; }
  [[nodiscard]] std::int32_t superstep() const { return superstep_; }
  [[nodiscard]] const GraphTemplate& graphTemplate() const { return *tmpl_; }

  [[nodiscard]] double value() const { return *value_; }
  void setValue(double v) { *value_ = v; }

  [[nodiscard]] std::span<const double> messages() const { return messages_; }

  [[nodiscard]] double edgeWeight(EdgeIndex e) const {
    return edge_weights_->empty() ? 1.0 : (*edge_weights_)[e];
  }

  void sendTo(VertexIndex dst, double value);
  void voteToHalt() { *halted_ = 1; }

 private:
  friend class VertexCentricEngine;
  friend struct VcWorker;

  VertexIndex vertex_ = 0;
  std::int32_t superstep_ = 0;
  const GraphTemplate* tmpl_ = nullptr;
  double* value_ = nullptr;
  std::uint8_t* halted_ = nullptr;
  std::span<const double> messages_;
  const std::vector<double>* edge_weights_ = nullptr;
  struct VcWorker* worker_ = nullptr;
};

}  // namespace vertexcentric
}  // namespace tsg
