// Fundamental identifier and index types of the time-series graph model.
//
// Template vertices/edges carry 64-bit external ids (the paper's "Long" id
// attribute); all in-memory hot paths use dense 32-bit indices assigned by
// GraphTemplate at finalize time.
#pragma once

#include <cstdint>
#include <limits>

namespace tsg {

// External, stable identifiers (set in the graph template).
using VertexId = std::uint64_t;
using EdgeId = std::uint64_t;

// Dense internal indices (positions in CSR arrays).
using VertexIndex = std::uint32_t;
using EdgeIndex = std::uint32_t;

// Partition and subgraph identities.
using PartitionId = std::uint32_t;
using SubgraphId = std::uint32_t;  // globally unique across partitions

// Timestep index within a collection (0-based relative to t0).
using Timestep = std::int32_t;

inline constexpr VertexIndex kInvalidVertexIndex =
    std::numeric_limits<VertexIndex>::max();
inline constexpr EdgeIndex kInvalidEdgeIndex =
    std::numeric_limits<EdgeIndex>::max();
inline constexpr SubgraphId kInvalidSubgraph =
    std::numeric_limits<SubgraphId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

}  // namespace tsg
