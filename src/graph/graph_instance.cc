#include "graph/graph_instance.h"

namespace tsg {

GraphInstance::GraphInstance(const GraphTemplate& tmpl, Timestep timestep,
                             std::int64_t timestamp)
    : timestep_(timestep), timestamp_(timestamp) {
  vertex_cols_.reserve(tmpl.vertexSchema().size());
  for (const auto& def : tmpl.vertexSchema().defs()) {
    vertex_cols_.push_back(AttributeColumn::make(def.type, tmpl.numVertices()));
  }
  edge_cols_.reserve(tmpl.edgeSchema().size());
  for (const auto& def : tmpl.edgeSchema().defs()) {
    edge_cols_.push_back(AttributeColumn::make(def.type, tmpl.numEdges()));
  }
}

Status GraphInstance::validateAgainst(const GraphTemplate& tmpl) const {
  if (vertex_cols_.size() != tmpl.vertexSchema().size()) {
    return Status::invalidArgument("vertex attribute count mismatch");
  }
  if (edge_cols_.size() != tmpl.edgeSchema().size()) {
    return Status::invalidArgument("edge attribute count mismatch");
  }
  for (std::size_t a = 0; a < vertex_cols_.size(); ++a) {
    if (vertex_cols_[a].type() != tmpl.vertexSchema().at(a).type) {
      return Status::invalidArgument("vertex attribute type mismatch: " +
                                     tmpl.vertexSchema().at(a).name);
    }
    if (vertex_cols_[a].size() != tmpl.numVertices()) {
      return Status::invalidArgument("vertex column size mismatch: " +
                                     tmpl.vertexSchema().at(a).name);
    }
  }
  for (std::size_t a = 0; a < edge_cols_.size(); ++a) {
    if (edge_cols_[a].type() != tmpl.edgeSchema().at(a).type) {
      return Status::invalidArgument("edge attribute type mismatch: " +
                                     tmpl.edgeSchema().at(a).name);
    }
    if (edge_cols_[a].size() != tmpl.numEdges()) {
      return Status::invalidArgument("edge column size mismatch: " +
                                     tmpl.edgeSchema().at(a).name);
    }
  }
  return Status::ok();
}

void GraphInstance::serialize(BinaryWriter& writer) const {
  writer.writeI32(timestep_);
  writer.writeI64(timestamp_);
  writer.writeVarint(vertex_cols_.size());
  for (const auto& col : vertex_cols_) {
    col.serialize(writer);
  }
  writer.writeVarint(edge_cols_.size());
  for (const auto& col : edge_cols_) {
    col.serialize(writer);
  }
}

Result<GraphInstance> GraphInstance::deserialize(BinaryReader& reader) {
  GraphInstance inst;
  TSG_RETURN_IF_ERROR(reader.readI32(inst.timestep_));
  TSG_RETURN_IF_ERROR(reader.readI64(inst.timestamp_));
  std::uint64_t num_vertex_cols = 0;
  TSG_RETURN_IF_ERROR(reader.readVarint(num_vertex_cols));
  inst.vertex_cols_.reserve(static_cast<std::size_t>(num_vertex_cols));
  for (std::uint64_t i = 0; i < num_vertex_cols; ++i) {
    auto col = AttributeColumn::deserialize(reader);
    if (!col.isOk()) {
      return col.status();
    }
    inst.vertex_cols_.push_back(std::move(col).value());
  }
  std::uint64_t num_edge_cols = 0;
  TSG_RETURN_IF_ERROR(reader.readVarint(num_edge_cols));
  inst.edge_cols_.reserve(static_cast<std::size_t>(num_edge_cols));
  for (std::uint64_t i = 0; i < num_edge_cols; ++i) {
    auto col = AttributeColumn::deserialize(reader);
    if (!col.isOk()) {
      return col.status();
    }
    inst.edge_cols_.push_back(std::move(col).value());
  }
  return inst;
}

}  // namespace tsg
