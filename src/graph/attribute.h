// Typed attribute schemas and columnar attribute storage.
//
// The paper's model (§II-A): the template declares typed attributes for all
// vertices and for all edges; every instance carries a value for each
// attribute of each vertex/edge. We store instance values columnar — one
// contiguous column per attribute — which is both cache-friendly for the
// per-subgraph Compute loops and compact on disk in GoFS slices.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace tsg {

enum class AttrType : std::uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kBool = 2,
  kString = 3,
  kStringList = 4,
};

std::string_view attrTypeName(AttrType type);

struct AttrDef {
  std::string name;
  AttrType type = AttrType::kInt64;

  bool operator==(const AttrDef&) const = default;
};

// Ordered list of attribute definitions with by-name lookup.
class AttributeSchema {
 public:
  AttributeSchema() = default;
  explicit AttributeSchema(std::vector<AttrDef> defs);

  // Appends a definition; the name must be unique. Returns the attr index.
  std::size_t add(std::string name, AttrType type);

  [[nodiscard]] std::size_t size() const { return defs_.size(); }
  [[nodiscard]] bool empty() const { return defs_.empty(); }
  [[nodiscard]] const AttrDef& at(std::size_t i) const;
  [[nodiscard]] const std::vector<AttrDef>& defs() const { return defs_; }

  // Index of the attribute with this name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t indexOf(std::string_view name) const;

  // Index of a required attribute; aborts if missing (programming error).
  [[nodiscard]] std::size_t requireIndex(std::string_view name) const;

  bool operator==(const AttributeSchema&) const = default;

  void serialize(BinaryWriter& writer) const;
  static Result<AttributeSchema> deserialize(BinaryReader& reader);

 private:
  std::vector<AttrDef> defs_;
};

// One column of attribute values. Bool uses uint8 storage to stay
// addressable; StringList models the paper's per-vertex tweet lists.
class AttributeColumn {
 public:
  using Int64Vec = std::vector<std::int64_t>;
  using DoubleVec = std::vector<double>;
  using BoolVec = std::vector<std::uint8_t>;
  using StringVec = std::vector<std::string>;
  using StringListVec = std::vector<std::vector<std::string>>;

  AttributeColumn() = default;

  // Creates a zero/empty-initialized column of `count` values.
  static AttributeColumn make(AttrType type, std::size_t count);

  [[nodiscard]] AttrType type() const;
  [[nodiscard]] std::size_t size() const;

  // Typed accessors; aborts on type mismatch (schema is validated upstream).
  [[nodiscard]] Int64Vec& asInt64();
  [[nodiscard]] const Int64Vec& asInt64() const;
  [[nodiscard]] DoubleVec& asDouble();
  [[nodiscard]] const DoubleVec& asDouble() const;
  [[nodiscard]] BoolVec& asBool();
  [[nodiscard]] const BoolVec& asBool() const;
  [[nodiscard]] StringVec& asString();
  [[nodiscard]] const StringVec& asString() const;
  [[nodiscard]] StringListVec& asStringList();
  [[nodiscard]] const StringListVec& asStringList() const;

  // Copies the values at `indices` into a new column (slice extraction).
  [[nodiscard]] AttributeColumn gather(
      std::span<const std::uint32_t> indices) const;

  // Writes values from `src` back at `indices` (slice re-assembly):
  // this[indices[i]] = src[i].
  void scatterFrom(const AttributeColumn& src,
                   std::span<const std::uint32_t> indices);

  void serialize(BinaryWriter& writer) const;
  static Result<AttributeColumn> deserialize(BinaryReader& reader);

  bool operator==(const AttributeColumn&) const = default;

 private:
  std::variant<Int64Vec, DoubleVec, BoolVec, StringVec, StringListVec> data_;
};

}  // namespace tsg
