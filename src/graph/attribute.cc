#include "graph/attribute.h"

#include <algorithm>

namespace tsg {

std::string_view attrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kInt64:
      return "int64";
    case AttrType::kDouble:
      return "double";
    case AttrType::kBool:
      return "bool";
    case AttrType::kString:
      return "string";
    case AttrType::kStringList:
      return "string_list";
  }
  return "unknown";
}

AttributeSchema::AttributeSchema(std::vector<AttrDef> defs)
    : defs_(std::move(defs)) {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    for (std::size_t j = i + 1; j < defs_.size(); ++j) {
      TSG_CHECK_MSG(defs_[i].name != defs_[j].name,
                    "duplicate attribute name: " + defs_[i].name);
    }
  }
}

std::size_t AttributeSchema::add(std::string name, AttrType type) {
  TSG_CHECK_MSG(indexOf(name) == npos, "duplicate attribute name: " + name);
  defs_.push_back({std::move(name), type});
  return defs_.size() - 1;
}

const AttrDef& AttributeSchema::at(std::size_t i) const {
  TSG_CHECK(i < defs_.size());
  return defs_[i];
}

std::size_t AttributeSchema::indexOf(std::string_view name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      return i;
    }
  }
  return npos;
}

std::size_t AttributeSchema::requireIndex(std::string_view name) const {
  const std::size_t i = indexOf(name);
  TSG_CHECK_MSG(i != npos, "missing required attribute: " + std::string(name));
  return i;
}

void AttributeSchema::serialize(BinaryWriter& writer) const {
  writer.writeVarint(defs_.size());
  for (const auto& def : defs_) {
    writer.writeString(def.name);
    writer.writeU8(static_cast<std::uint8_t>(def.type));
  }
}

Result<AttributeSchema> AttributeSchema::deserialize(BinaryReader& reader) {
  std::uint64_t n = 0;
  TSG_RETURN_IF_ERROR(reader.readVarint(n));
  std::vector<AttrDef> defs;
  defs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    AttrDef def;
    TSG_RETURN_IF_ERROR(reader.readString(def.name));
    std::uint8_t type_raw = 0;
    TSG_RETURN_IF_ERROR(reader.readU8(type_raw));
    if (type_raw > static_cast<std::uint8_t>(AttrType::kStringList)) {
      return Status::corruptData("bad attribute type tag");
    }
    def.type = static_cast<AttrType>(type_raw);
    defs.push_back(std::move(def));
  }
  return AttributeSchema(std::move(defs));
}

AttributeColumn AttributeColumn::make(AttrType type, std::size_t count) {
  AttributeColumn col;
  switch (type) {
    case AttrType::kInt64:
      col.data_ = Int64Vec(count, 0);
      break;
    case AttrType::kDouble:
      col.data_ = DoubleVec(count, 0.0);
      break;
    case AttrType::kBool:
      col.data_ = BoolVec(count, 0);
      break;
    case AttrType::kString:
      col.data_ = StringVec(count);
      break;
    case AttrType::kStringList:
      col.data_ = StringListVec(count);
      break;
  }
  return col;
}

AttrType AttributeColumn::type() const {
  return static_cast<AttrType>(data_.index());
}

std::size_t AttributeColumn::size() const {
  return std::visit([](const auto& vec) { return vec.size(); }, data_);
}

AttributeColumn::Int64Vec& AttributeColumn::asInt64() {
  TSG_CHECK(type() == AttrType::kInt64);
  return std::get<Int64Vec>(data_);
}
const AttributeColumn::Int64Vec& AttributeColumn::asInt64() const {
  TSG_CHECK(type() == AttrType::kInt64);
  return std::get<Int64Vec>(data_);
}
AttributeColumn::DoubleVec& AttributeColumn::asDouble() {
  TSG_CHECK(type() == AttrType::kDouble);
  return std::get<DoubleVec>(data_);
}
const AttributeColumn::DoubleVec& AttributeColumn::asDouble() const {
  TSG_CHECK(type() == AttrType::kDouble);
  return std::get<DoubleVec>(data_);
}
AttributeColumn::BoolVec& AttributeColumn::asBool() {
  TSG_CHECK(type() == AttrType::kBool);
  return std::get<BoolVec>(data_);
}
const AttributeColumn::BoolVec& AttributeColumn::asBool() const {
  TSG_CHECK(type() == AttrType::kBool);
  return std::get<BoolVec>(data_);
}
AttributeColumn::StringVec& AttributeColumn::asString() {
  TSG_CHECK(type() == AttrType::kString);
  return std::get<StringVec>(data_);
}
const AttributeColumn::StringVec& AttributeColumn::asString() const {
  TSG_CHECK(type() == AttrType::kString);
  return std::get<StringVec>(data_);
}
AttributeColumn::StringListVec& AttributeColumn::asStringList() {
  TSG_CHECK(type() == AttrType::kStringList);
  return std::get<StringListVec>(data_);
}
const AttributeColumn::StringListVec& AttributeColumn::asStringList() const {
  TSG_CHECK(type() == AttrType::kStringList);
  return std::get<StringListVec>(data_);
}

AttributeColumn AttributeColumn::gather(
    std::span<const std::uint32_t> indices) const {
  AttributeColumn out;
  std::visit(
      [&](const auto& vec) {
        std::decay_t<decltype(vec)> gathered;
        gathered.reserve(indices.size());
        for (const std::uint32_t i : indices) {
          TSG_CHECK(i < vec.size());
          gathered.push_back(vec[i]);
        }
        out.data_ = std::move(gathered);
      },
      data_);
  return out;
}

void AttributeColumn::scatterFrom(const AttributeColumn& src,
                                  std::span<const std::uint32_t> indices) {
  TSG_CHECK(src.type() == type());
  TSG_CHECK(src.size() == indices.size());
  std::visit(
      [&](auto& dst_vec) {
        const auto& src_vec =
            std::get<std::decay_t<decltype(dst_vec)>>(src.data_);
        for (std::size_t i = 0; i < indices.size(); ++i) {
          TSG_CHECK(indices[i] < dst_vec.size());
          dst_vec[indices[i]] = src_vec[i];
        }
      },
      data_);
}

namespace {

constexpr std::uint8_t kColumnFormatVersion = 1;

}  // namespace

void AttributeColumn::serialize(BinaryWriter& writer) const {
  writer.writeU8(kColumnFormatVersion);
  writer.writeU8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case AttrType::kInt64:
      writer.writePodVector(asInt64());
      break;
    case AttrType::kDouble:
      writer.writePodVector(asDouble());
      break;
    case AttrType::kBool:
      writer.writePodVector(asBool());
      break;
    case AttrType::kString:
      writer.writeStringVector(asString());
      break;
    case AttrType::kStringList: {
      const auto& lists = asStringList();
      writer.writeVarint(lists.size());
      for (const auto& list : lists) {
        writer.writeStringVector(list);
      }
      break;
    }
  }
}

Result<AttributeColumn> AttributeColumn::deserialize(BinaryReader& reader) {
  std::uint8_t version = 0;
  TSG_RETURN_IF_ERROR(reader.readU8(version));
  if (version != kColumnFormatVersion) {
    return Status::corruptData("unsupported column format version");
  }
  std::uint8_t type_raw = 0;
  TSG_RETURN_IF_ERROR(reader.readU8(type_raw));
  if (type_raw > static_cast<std::uint8_t>(AttrType::kStringList)) {
    return Status::corruptData("bad column type tag");
  }
  const auto type = static_cast<AttrType>(type_raw);
  AttributeColumn col;
  switch (type) {
    case AttrType::kInt64: {
      Int64Vec v;
      TSG_RETURN_IF_ERROR(reader.readPodVector(v));
      col.data_ = std::move(v);
      break;
    }
    case AttrType::kDouble: {
      DoubleVec v;
      TSG_RETURN_IF_ERROR(reader.readPodVector(v));
      col.data_ = std::move(v);
      break;
    }
    case AttrType::kBool: {
      BoolVec v;
      TSG_RETURN_IF_ERROR(reader.readPodVector(v));
      col.data_ = std::move(v);
      break;
    }
    case AttrType::kString: {
      StringVec v;
      TSG_RETURN_IF_ERROR(reader.readStringVector(v));
      col.data_ = std::move(v);
      break;
    }
    case AttrType::kStringList: {
      std::uint64_t n = 0;
      TSG_RETURN_IF_ERROR(reader.readVarint(n));
      StringListVec lists(static_cast<std::size_t>(n));
      for (auto& list : lists) {
        TSG_RETURN_IF_ERROR(reader.readStringVector(list));
      }
      col.data_ = std::move(lists);
      break;
    }
  }
  return col;
}

}  // namespace tsg
