// TimeSeriesCollection — Γ = ⟨Ĝ, G, t₀, δ⟩ (§II-A).
//
// A template plus a time-ordered list of instances captured at period δ.
// This is the in-memory ("direct") representation; GoFS (src/gofs) is the
// on-disk, partitioned, lazily-loaded representation of the same data.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph_instance.h"
#include "graph/graph_template.h"

namespace tsg {

class TimeSeriesCollection {
 public:
  TimeSeriesCollection() = default;
  TimeSeriesCollection(GraphTemplatePtr tmpl, std::int64_t t0,
                       std::int64_t delta)
      : template_(std::move(tmpl)), t0_(t0), delta_(delta) {
    TSG_CHECK(template_ != nullptr);
    TSG_CHECK_MSG(delta_ > 0, "period delta must be positive");
  }

  [[nodiscard]] const GraphTemplate& graphTemplate() const {
    TSG_CHECK(template_ != nullptr);
    return *template_;
  }
  [[nodiscard]] const GraphTemplatePtr& templatePtr() const {
    return template_;
  }

  [[nodiscard]] std::int64_t t0() const { return t0_; }
  [[nodiscard]] std::int64_t delta() const { return delta_; }

  [[nodiscard]] std::size_t numInstances() const { return instances_.size(); }
  [[nodiscard]] const GraphInstance& instance(Timestep t) const {
    TSG_CHECK(t >= 0 && static_cast<std::size_t>(t) < instances_.size());
    return instances_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] GraphInstance& mutableInstance(Timestep t) {
    TSG_CHECK(t >= 0 && static_cast<std::size_t>(t) < instances_.size());
    return instances_[static_cast<std::size_t>(t)];
  }

  // Appends a zero-initialized instance at the next timestep and returns it.
  GraphInstance& appendInstance();

  // Appends an externally built instance; its timestep/timestamp must match
  // the next slot (periodicity invariant t_{i+1} - t_i = δ).
  Status appendInstance(GraphInstance instance);

  // Validates every instance against the template and the timestamp series.
  [[nodiscard]] Status validate() const;

 private:
  GraphTemplatePtr template_;
  std::int64_t t0_ = 0;
  std::int64_t delta_ = 1;
  std::vector<GraphInstance> instances_;
};

}  // namespace tsg
