// GraphInstance — the attribute values of one timestep gᵗ = ⟨Vᵗ, Eᵗ, t⟩.
//
// An instance owns one column per vertex attribute and one per edge
// attribute of the template schema, each sized |V̂| / |Ê|. The topology is
// NOT duplicated here; it lives in the shared GraphTemplate.
#pragma once

#include <cstdint>

#include "graph/attribute.h"
#include "graph/graph_template.h"
#include "graph/types.h"

namespace tsg {

class GraphInstance {
 public:
  GraphInstance() = default;

  // Zero/empty-initialized instance for one timestep of `tmpl`.
  GraphInstance(const GraphTemplate& tmpl, Timestep timestep,
                std::int64_t timestamp);

  [[nodiscard]] Timestep timestep() const { return timestep_; }
  [[nodiscard]] std::int64_t timestamp() const { return timestamp_; }

  [[nodiscard]] std::size_t numVertexAttrs() const {
    return vertex_cols_.size();
  }
  [[nodiscard]] std::size_t numEdgeAttrs() const { return edge_cols_.size(); }

  [[nodiscard]] AttributeColumn& vertexCol(std::size_t attr) {
    TSG_CHECK(attr < vertex_cols_.size());
    return vertex_cols_[attr];
  }
  [[nodiscard]] const AttributeColumn& vertexCol(std::size_t attr) const {
    TSG_CHECK(attr < vertex_cols_.size());
    return vertex_cols_[attr];
  }
  [[nodiscard]] AttributeColumn& edgeCol(std::size_t attr) {
    TSG_CHECK(attr < edge_cols_.size());
    return edge_cols_[attr];
  }
  [[nodiscard]] const AttributeColumn& edgeCol(std::size_t attr) const {
    TSG_CHECK(attr < edge_cols_.size());
    return edge_cols_[attr];
  }

  // Validates column types/sizes against the template schema.
  [[nodiscard]] Status validateAgainst(const GraphTemplate& tmpl) const;

  void serialize(BinaryWriter& writer) const;
  static Result<GraphInstance> deserialize(BinaryReader& reader);

  bool operator==(const GraphInstance&) const = default;

 private:
  Timestep timestep_ = 0;
  std::int64_t timestamp_ = 0;
  std::vector<AttributeColumn> vertex_cols_;
  std::vector<AttributeColumn> edge_cols_;
};

}  // namespace tsg
