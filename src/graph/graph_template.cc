#include "graph/graph_template.h"

#include <algorithm>
#include <deque>

namespace tsg {

std::optional<VertexIndex> GraphTemplate::indexOfVertex(VertexId id) const {
  const auto it = id_to_index_.find(id);
  if (it == id_to_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

namespace {

// Single BFS; returns (farthest vertex, eccentricity from start).
std::pair<VertexIndex, std::size_t> bfsFarthest(const GraphTemplate& g,
                                                VertexIndex start) {
  std::vector<std::uint32_t> dist(g.numVertices(), ~0U);
  std::deque<VertexIndex> queue;
  dist[start] = 0;
  queue.push_back(start);
  VertexIndex farthest = start;
  std::size_t max_dist = 0;
  while (!queue.empty()) {
    const VertexIndex v = queue.front();
    queue.pop_front();
    for (const auto& oe : g.outEdges(v)) {
      if (dist[oe.dst] == ~0U) {
        dist[oe.dst] = dist[v] + 1;
        if (dist[oe.dst] > max_dist) {
          max_dist = dist[oe.dst];
          farthest = oe.dst;
        }
        queue.push_back(oe.dst);
      }
    }
  }
  return {farthest, max_dist};
}

}  // namespace

std::size_t GraphTemplate::estimateDiameter(VertexIndex start) const {
  if (numVertices() == 0) {
    return 0;
  }
  TSG_CHECK(start < numVertices());
  const auto [far_vertex, d1] = bfsFarthest(*this, start);
  const auto [unused, d2] = bfsFarthest(*this, far_vertex);
  (void)unused;
  return std::max(d1, d2);
}

namespace {

constexpr std::uint32_t kTemplateMagic = 0x54534754;  // "TSGT"
constexpr std::uint8_t kTemplateVersion = 1;

}  // namespace

void GraphTemplate::serialize(BinaryWriter& writer) const {
  writer.writeU32(kTemplateMagic);
  writer.writeU8(kTemplateVersion);
  writer.writeBool(directed_);
  writer.writePodVector(vertex_ids_);
  writer.writePodVector(out_offsets_);
  writer.writePodVector(edge_ids_);
  writer.writePodVector(edge_src_);
  writer.writePodVector(edge_dst_);
  vertex_schema_.serialize(writer);
  edge_schema_.serialize(writer);
}

Result<GraphTemplate> GraphTemplate::deserialize(BinaryReader& reader) {
  std::uint32_t magic = 0;
  TSG_RETURN_IF_ERROR(reader.readU32(magic));
  if (magic != kTemplateMagic) {
    return Status::corruptData("bad graph template magic");
  }
  std::uint8_t version = 0;
  TSG_RETURN_IF_ERROR(reader.readU8(version));
  if (version != kTemplateVersion) {
    return Status::corruptData("unsupported graph template version");
  }
  GraphTemplate g;
  TSG_RETURN_IF_ERROR(reader.readBool(g.directed_));
  TSG_RETURN_IF_ERROR(reader.readPodVector(g.vertex_ids_));
  TSG_RETURN_IF_ERROR(reader.readPodVector(g.out_offsets_));
  TSG_RETURN_IF_ERROR(reader.readPodVector(g.edge_ids_));
  TSG_RETURN_IF_ERROR(reader.readPodVector(g.edge_src_));
  TSG_RETURN_IF_ERROR(reader.readPodVector(g.edge_dst_));
  {
    auto schema = AttributeSchema::deserialize(reader);
    if (!schema.isOk()) {
      return schema.status();
    }
    g.vertex_schema_ = std::move(schema).value();
  }
  {
    auto schema = AttributeSchema::deserialize(reader);
    if (!schema.isOk()) {
      return schema.status();
    }
    g.edge_schema_ = std::move(schema).value();
  }
  // Rebuild derived structures and validate integrity.
  const std::size_t num_vertices = g.vertex_ids_.size();
  const std::size_t num_edges = g.edge_dst_.size();
  if (g.out_offsets_.size() != num_vertices + 1 ||
      g.edge_ids_.size() != num_edges || g.edge_src_.size() != num_edges ||
      g.out_offsets_.front() != 0 || g.out_offsets_.back() != num_edges) {
    return Status::corruptData("inconsistent graph template arrays");
  }
  g.id_to_index_.reserve(num_vertices);
  for (std::size_t i = 0; i < num_vertices; ++i) {
    const auto [it, inserted] =
        g.id_to_index_.emplace(g.vertex_ids_[i], static_cast<VertexIndex>(i));
    (void)it;
    if (!inserted) {
      return Status::corruptData("duplicate vertex id in template");
    }
  }
  g.out_edges_.resize(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    if (g.edge_src_[e] >= num_vertices || g.edge_dst_[e] >= num_vertices) {
      return Status::corruptData("edge endpoint out of range");
    }
    g.out_edges_[e] = {g.edge_dst_[e], static_cast<EdgeIndex>(e)};
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    if (g.out_offsets_[v] > g.out_offsets_[v + 1]) {
      return Status::corruptData("non-monotone CSR offsets");
    }
    for (std::uint64_t e = g.out_offsets_[v]; e < g.out_offsets_[v + 1]; ++e) {
      if (g.edge_src_[e] != v) {
        return Status::corruptData("edge source disagrees with CSR bucket");
      }
    }
  }
  return g;
}

bool GraphTemplate::operator==(const GraphTemplate& other) const {
  return directed_ == other.directed_ && vertex_ids_ == other.vertex_ids_ &&
         out_offsets_ == other.out_offsets_ && edge_ids_ == other.edge_ids_ &&
         edge_src_ == other.edge_src_ && edge_dst_ == other.edge_dst_ &&
         vertex_schema_ == other.vertex_schema_ &&
         edge_schema_ == other.edge_schema_;
}

Result<GraphTemplate> GraphTemplateBuilder::build() {
  GraphTemplate g;
  g.directed_ = directed_;
  g.vertex_schema_ = std::move(vertex_schema_);
  g.edge_schema_ = std::move(edge_schema_);
  g.vertex_ids_ = std::move(vertices_);

  const std::size_t num_vertices = g.vertex_ids_.size();
  g.id_to_index_.reserve(num_vertices);
  for (std::size_t i = 0; i < num_vertices; ++i) {
    const auto [it, inserted] =
        g.id_to_index_.emplace(g.vertex_ids_[i], static_cast<VertexIndex>(i));
    (void)it;
    if (!inserted) {
      return Status::invalidArgument("duplicate vertex id " +
                                     std::to_string(g.vertex_ids_[i]));
    }
  }

  // Count degrees, then place edges into CSR buckets.
  std::vector<std::uint64_t> degree(num_vertices, 0);
  struct ResolvedEdge {
    EdgeId id;
    VertexIndex src;
    VertexIndex dst;
  };
  std::vector<ResolvedEdge> resolved;
  resolved.reserve(edges_.size());
  for (const auto& e : edges_) {
    const auto src = g.indexOfVertex(e.src);
    const auto dst = g.indexOfVertex(e.dst);
    if (!src.has_value() || !dst.has_value()) {
      return Status::invalidArgument(
          "edge " + std::to_string(e.id) + " references unknown vertex " +
          std::to_string(src.has_value() ? e.dst : e.src));
    }
    resolved.push_back({e.id, *src, *dst});
    ++degree[*src];
  }
  edges_.clear();

  g.out_offsets_.assign(num_vertices + 1, 0);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] = g.out_offsets_[v] + degree[v];
  }

  const std::size_t num_edges = resolved.size();
  g.out_edges_.resize(num_edges);
  g.edge_ids_.resize(num_edges);
  g.edge_src_.resize(num_edges);
  g.edge_dst_.resize(num_edges);
  std::vector<std::uint64_t> cursor(g.out_offsets_.begin(),
                                    g.out_offsets_.end() - 1);
  for (const auto& e : resolved) {
    const std::uint64_t slot = cursor[e.src]++;
    const auto edge_index = static_cast<EdgeIndex>(slot);
    g.out_edges_[slot] = {e.dst, edge_index};
    g.edge_ids_[slot] = e.id;
    g.edge_src_[slot] = e.src;
    g.edge_dst_[slot] = e.dst;
  }
  return g;
}

}  // namespace tsg
