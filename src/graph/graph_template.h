// GraphTemplate — the time-invariant topology Ĝ = ⟨V̂, Ê⟩ of a time-series
// graph collection (§II-A of the paper), plus the typed attribute schemas
// shared by every instance.
//
// Storage is CSR over dense indices. All edges are directed slots; an
// undirected graph (e.g. a road network) is represented as symmetric pairs,
// which is also how the generators emit them. Edge attribute values are per
// directed slot.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "graph/attribute.h"
#include "graph/types.h"

namespace tsg {

class GraphTemplate {
 public:
  // One outgoing edge as seen from its source vertex.
  struct OutEdge {
    VertexIndex dst;
    EdgeIndex edge;
  };

  GraphTemplate() = default;

  // --- topology ---
  [[nodiscard]] std::size_t numVertices() const { return vertex_ids_.size(); }
  [[nodiscard]] std::size_t numEdges() const { return edge_dst_.size(); }
  [[nodiscard]] bool directed() const { return directed_; }

  [[nodiscard]] VertexId vertexId(VertexIndex v) const {
    TSG_CHECK(v < vertex_ids_.size());
    return vertex_ids_[v];
  }
  [[nodiscard]] std::optional<VertexIndex> indexOfVertex(VertexId id) const;

  [[nodiscard]] EdgeId edgeId(EdgeIndex e) const {
    TSG_CHECK(e < edge_ids_.size());
    return edge_ids_[e];
  }
  [[nodiscard]] VertexIndex edgeSrc(EdgeIndex e) const {
    TSG_CHECK(e < edge_src_.size());
    return edge_src_[e];
  }
  [[nodiscard]] VertexIndex edgeDst(EdgeIndex e) const {
    TSG_CHECK(e < edge_dst_.size());
    return edge_dst_[e];
  }

  [[nodiscard]] std::size_t outDegree(VertexIndex v) const {
    TSG_CHECK(v + 1 < out_offsets_.size());
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  // Outgoing edges of v. Edge indices are CSR positions, so the edge list of
  // a vertex is contiguous: edge index out_offsets_[v] + i for neighbor i.
  [[nodiscard]] std::span<const OutEdge> outEdges(VertexIndex v) const {
    TSG_CHECK(v + 1 < out_offsets_.size());
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  // --- schemas ---
  [[nodiscard]] const AttributeSchema& vertexSchema() const {
    return vertex_schema_;
  }
  [[nodiscard]] const AttributeSchema& edgeSchema() const {
    return edge_schema_;
  }

  // --- whole-graph statistics (used by Table I) ---
  // Lower bound on diameter via a double-sweep BFS from `start`. Exact on
  // trees; a tight heuristic on road-like graphs.
  [[nodiscard]] std::size_t estimateDiameter(VertexIndex start = 0) const;

  // --- persistence ---
  void serialize(BinaryWriter& writer) const;
  static Result<GraphTemplate> deserialize(BinaryReader& reader);

  bool operator==(const GraphTemplate& other) const;

 private:
  friend class GraphTemplateBuilder;

  bool directed_ = true;
  std::vector<VertexId> vertex_ids_;
  std::unordered_map<VertexId, VertexIndex> id_to_index_;

  // CSR. edge index e lives at position e in edge_* arrays; out_edges_ is
  // ordered so that edges of vertex v occupy [out_offsets_[v], out_offsets_[v+1]).
  std::vector<std::uint64_t> out_offsets_;  // |V|+1
  std::vector<OutEdge> out_edges_;          // |E|
  std::vector<EdgeId> edge_ids_;            // |E|, by edge index
  std::vector<VertexIndex> edge_src_;       // |E|
  std::vector<VertexIndex> edge_dst_;       // |E|

  AttributeSchema vertex_schema_;
  AttributeSchema edge_schema_;
};

using GraphTemplatePtr = std::shared_ptr<const GraphTemplate>;

// Incremental builder. Vertices and edges may be added in any order;
// build() lays out the CSR and validates referential integrity.
class GraphTemplateBuilder {
 public:
  explicit GraphTemplateBuilder(bool directed = true) : directed_(directed) {}

  // Declares a vertex. Duplicate ids are rejected at build().
  void addVertex(VertexId id) { vertices_.push_back(id); }

  // Declares a directed edge src -> dst (by external vertex id).
  void addEdge(EdgeId id, VertexId src, VertexId dst) {
    edges_.push_back({id, src, dst});
  }

  // For undirected graphs: adds both directions sharing the same edge id.
  void addUndirectedEdge(EdgeId id, VertexId a, VertexId b) {
    edges_.push_back({id, a, b});
    edges_.push_back({id, b, a});
  }

  AttributeSchema& vertexSchema() { return vertex_schema_; }
  AttributeSchema& edgeSchema() { return edge_schema_; }

  [[nodiscard]] std::size_t numVertices() const { return vertices_.size(); }
  [[nodiscard]] std::size_t numEdges() const { return edges_.size(); }

  // Consumes the builder's staged data.
  Result<GraphTemplate> build();

 private:
  struct StagedEdge {
    EdgeId id;
    VertexId src;
    VertexId dst;
  };

  bool directed_;
  std::vector<VertexId> vertices_;
  std::vector<StagedEdge> edges_;
  AttributeSchema vertex_schema_;
  AttributeSchema edge_schema_;
};

}  // namespace tsg
