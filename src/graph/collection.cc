#include "graph/collection.h"

namespace tsg {

GraphInstance& TimeSeriesCollection::appendInstance() {
  const auto t = static_cast<Timestep>(instances_.size());
  instances_.emplace_back(*template_, t, t0_ + static_cast<std::int64_t>(t) * delta_);
  return instances_.back();
}

Status TimeSeriesCollection::appendInstance(GraphInstance instance) {
  const auto t = static_cast<Timestep>(instances_.size());
  if (instance.timestep() != t) {
    return Status::invalidArgument(
        "instance timestep " + std::to_string(instance.timestep()) +
        " does not match next slot " + std::to_string(t));
  }
  const std::int64_t expected_ts = t0_ + static_cast<std::int64_t>(t) * delta_;
  if (instance.timestamp() != expected_ts) {
    return Status::invalidArgument(
        "instance timestamp " + std::to_string(instance.timestamp()) +
        " breaks the period; expected " + std::to_string(expected_ts));
  }
  TSG_RETURN_IF_ERROR(instance.validateAgainst(*template_));
  instances_.push_back(std::move(instance));
  return Status::ok();
}

Status TimeSeriesCollection::validate() const {
  if (template_ == nullptr) {
    return Status::failedPrecondition("collection has no template");
  }
  for (std::size_t t = 0; t < instances_.size(); ++t) {
    const auto& inst = instances_[t];
    if (inst.timestep() != static_cast<Timestep>(t)) {
      return Status::invalidArgument("instance out of order at slot " +
                                     std::to_string(t));
    }
    const std::int64_t expected_ts =
        t0_ + static_cast<std::int64_t>(t) * delta_;
    if (inst.timestamp() != expected_ts) {
      return Status::invalidArgument("instance timestamp breaks period at " +
                                     std::to_string(t));
    }
    TSG_RETURN_IF_ERROR(inst.validateAgainst(*template_));
  }
  return Status::ok();
}

}  // namespace tsg
