// SpaceSavingSketch — fixed-memory heavy-hitter tracking (Metwally et al.,
// "Efficient Computation of Frequent and Top-k Elements in Data Streams").
//
// The profiler cannot afford one accumulator per vertex (millions of keys,
// most of them cold), so per-vertex compute-ns and message fan-out feed this
// sketch instead: `capacity` monitored entries, and a stream item that is
// not monitored evicts the current minimum, inheriting its count as `error`.
//
// Guarantees (W = total offered weight, k = capacity):
//   * count - error <= true weight <= count for every monitored key;
//   * error <= W / k, so any key whose true weight exceeds W / k is
//     guaranteed to be monitored (asserted in tests/test_profile.cc).
//
// Not thread-safe; the Profiler serializes offers behind a per-partition
// mutex taken only on the sampled (every Nth vertex) path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tsg {

class SpaceSavingSketch {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  // upper bound on the key's true weight
    std::uint64_t error = 0;  // overcount inherited from evictions
  };

  explicit SpaceSavingSketch(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {
    index_.reserve(capacity_);
    entries_.reserve(capacity_);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t totalWeight() const { return total_weight_; }

  void offer(std::uint64_t key, std::uint64_t weight) {
    offerWithError(key, weight, 0);
  }

  // Folds another sketch in (per-partition shards into a run total). Each
  // foreign entry is offered as (count, error), which preserves the
  // count - error <= true <= count envelope; the combined error stays
  // bounded by W_total / k.
  void merge(const SpaceSavingSketch& other) {
    for (const Entry& e : other.entries_) {
      offerWithError(e.key, e.count, e.error);
    }
  }

  // Monitored entries, heaviest first (ties broken by key for determinism).
  [[nodiscard]] std::vector<Entry> topK() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.count != b.count ? a.count > b.count : a.key < b.key;
    });
    return out;
  }

 private:
  void offerWithError(std::uint64_t key, std::uint64_t weight,
                      std::uint64_t error) {
    total_weight_ += weight;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].count += weight;
      entries_[it->second].error += error;
      return;
    }
    if (entries_.size() < capacity_) {
      index_.emplace(key, entries_.size());
      entries_.push_back(Entry{key, weight, error});
      return;
    }
    // Evict the minimum-count entry; the newcomer inherits its count as
    // error (the defining space-saving move).
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].count < entries_[min_i].count) {
        min_i = i;
      }
    }
    const std::uint64_t evicted = entries_[min_i].count;
    index_.erase(entries_[min_i].key);
    index_.emplace(key, min_i);
    entries_[min_i] = Entry{key, evicted + weight, evicted + error};
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::uint64_t total_weight_ = 0;
};

}  // namespace tsg
