// Profiler — the process-wide cost-attribution recorder behind
// `tsgcli --profile=`.
//
// Cost model mirrors the tracer and the protocol checker: disarmed (the
// default), every hook call site is one relaxed atomic load plus an
// untaken branch — no allocation, no locks, nothing observable. Armed, the
// engines bracket a run with beginRun()/take(); in between, hooks charge
// costs into a preallocated [row][subgraph] grid of atomic cells.
//
// Hook placement contract (the reconciliation invariant depends on it):
// recordCompute / recordSend calls sit immediately adjacent to the engine
// meter increments (`subgraphs_computed`, `msgs_sent`, `bytes_sent`) that
// feed SuperstepRecord parts and the per-partition MetricsRegistry
// counters. Summing the table over a partition's subgraphs therefore
// reproduces those totals exactly; tests/test_profile.cc asserts it for
// all nine shipped algorithms.
//
// Concurrency: cells are relaxed atomics because the temporally-concurrent
// mode runs several timesteps' workers at once, and inbound charges
// (recordSend's destination side) cross partitions. take() runs after the
// engine joined its workers, so it reads a quiesced table. Per-vertex
// sketch offers are serialized by a per-partition mutex taken only on the
// sampled (every Nth vertex) path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "partition/partitioned_graph.h"
#include "metrics/attribution.h"
#include "profile/sketch.h"

namespace tsg {

struct ProfileOptions {
  // Vertex-centric engines time every Nth vertex compute (per worker) and
  // scale the sampled weight by N, keeping the estimate unbiased while
  // bounding the clock overhead. 1 = every vertex.
  std::uint32_t sample_every = 8;
  // Space-saving sketch capacity (monitored vertices per sketch); error is
  // bounded by total_weight / capacity.
  std::size_t sketch_capacity = 64;
};

class Profiler {
 public:
  static Profiler& global();

  // The zero-cost gate every hook call site checks first.
  static bool enabled() {
    return armed_.load(std::memory_order_relaxed);  // tsg:mo(gate read; a stale miss only skips one sample)
  }

  // Arms/disarms the profiler process-wide (tsgcli --profile=, benches).
  void arm(const ProfileOptions& options);
  void disarm();
  [[nodiscard]] std::uint32_t sampleEvery() const { return sample_every_; }

  // Engine lifecycle: beginRun preallocates the [num_timesteps + 1 rows]
  // x [subgraphs] grid (the extra row holds the Merge BSP, stamped
  // timestep `first + count` like its RunStats records); take() freezes
  // the table, merges the sketches and ends the recording window. Both run
  // on the engine's coordinator thread. `pg` must stay alive until take().
  void beginRun(const PartitionedGraph& pg, Timestep first_timestep,
                std::int32_t num_timesteps);
  [[nodiscard]] AttributionTable take();

  // --- recording hooks (no-ops unless a run window is open) ---

  // One program compute invocation on subgraph sg at timestep t.
  void recordCompute(SubgraphId sg, Timestep t, std::int64_t ns);
  // One message: outbound charged to (src, t), inbound to dst's run total.
  void recordSend(SubgraphId src, SubgraphId dst, Timestep t,
                  std::uint64_t bytes);
  // One sampled vertex compute (vertex-centric engines); `ns` and `fanout`
  // are the raw sampled measurements — the profiler scales by sampleEvery().
  void recordVertexSample(PartitionId p, VertexIndex vertex, std::uint64_t ns,
                          std::uint64_t fanout);
  // Resident attribute bytes of partition p's loaded instance at timestep
  // t, distributed across p's subgraphs proportional to vertex count.
  void recordResidentSlice(PartitionId p, Timestep t, std::uint64_t bytes);
  // Scheduler blame: wall-clock other partitions spent waiting because of
  // p (BSP barrier wait behind the round's straggler; async ready-queue
  // gap ended by p's task).
  void recordWaitCaused(PartitionId p, std::int64_t ns);
  // p's task was stolen by another worker (p is the straggling victim).
  void recordStealVictim(PartitionId p);

  // Recovery rollback: zeroes rows for timesteps >= t, matching the
  // engine's meter reset when it replays from a checkpoint. Inbound/
  // scheduler run totals are not rolled back (documented approximation;
  // the exact-reconciliation tests run fault-free).
  void resetRowsFrom(Timestep t);

 private:
  Profiler() = default;

  struct Cell {
    std::atomic<std::int64_t> compute_ns{0};
    std::atomic<std::uint64_t> computes{0};
    std::atomic<std::uint64_t> msgs_out{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> resident_bytes{0};
  };
  struct SketchShard {
    std::mutex mutex;
    SpaceSavingSketch compute;
    SpaceSavingSketch fanout;
    SketchShard(std::size_t capacity) : compute(capacity), fanout(capacity) {}
  };

  // Row index for timestep t, or -1 when outside the run window.
  [[nodiscard]] std::int32_t rowOf(Timestep t) const {
    const std::int32_t row = t - first_timestep_;
    return row >= 0 && row < num_rows_ ? row : -1;
  }
  [[nodiscard]] Cell* cellAt(std::int32_t row, SubgraphId sg) {
    if (row < 0 || sg >= num_subgraphs_) {
      return nullptr;
    }
    return &cells_[static_cast<std::size_t>(row) * num_subgraphs_ + sg];
  }

  static std::atomic<bool> armed_;

  // Run-window gate for hooks (beginRun sets, take clears). Separate from
  // armed_ so scheduler/gofs activity outside a run charges nothing.
  std::atomic<bool> run_active_{false};

  ProfileOptions options_;
  std::uint32_t sample_every_ = 8;

  const PartitionedGraph* pg_ = nullptr;
  Timestep first_timestep_ = 0;
  std::int32_t num_rows_ = 0;
  std::uint32_t num_subgraphs_ = 0;
  std::vector<Cell> cells_;  // [row * num_subgraphs + sg]
  std::vector<std::atomic<std::uint64_t>> msgs_in_;
  std::vector<std::atomic<std::uint64_t>> bytes_in_;
  std::vector<std::atomic<std::int64_t>> wait_caused_ns_;
  std::vector<std::atomic<std::uint64_t>> steal_victims_;
  std::vector<std::unique_ptr<SketchShard>> shards_;  // per partition
};

}  // namespace tsg
