#include "profile/advisor.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

namespace tsg {
namespace {

std::string fmtMs(std::int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string fmtPct(double pct) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", pct);
  return buf;
}

std::int64_t makespan(const std::vector<std::int64_t>& loads) {
  std::int64_t max = 0;
  for (const std::int64_t l : loads) {
    max = std::max(max, l);
  }
  return max;
}

}  // namespace

AdvisorReport advisePartitioning(const AttributionTable& table,
                                 const CriticalPathAnalysis* analysis,
                                 const AdvisorOptions& options) {
  AdvisorReport report;
  report.suggested_subgraph_partition.resize(table.numSubgraphs());
  for (std::size_t sg = 0; sg < table.numSubgraphs(); ++sg) {
    report.suggested_subgraph_partition[sg] = table.subgraphs[sg].partition;
  }
  if (table.num_partitions < 2 || table.numSubgraphs() == 0) {
    report.findings.push_back(
        "nothing to rebalance (fewer than 2 partitions)");
    return report;
  }

  const auto totals = table.subgraphTotals();
  std::vector<std::int64_t> loads = table.partitionComputeNs();
  report.makespan_before_ns = makespan(loads);
  report.makespan_after_ns = report.makespan_before_ns;
  if (report.makespan_before_ns <= 0) {
    report.findings.push_back("no compute attributed; nothing to advise");
    return report;
  }

  std::vector<bool> moved(table.numSubgraphs(), false);
  for (std::int32_t step = 0; step < options.max_moves; ++step) {
    const std::int64_t current = makespan(loads);
    const PartitionId straggler = static_cast<PartitionId>(
        std::max_element(loads.begin(), loads.end()) - loads.begin());

    // Best (subgraph, destination) over the straggler's subgraphs: the pair
    // minimizing the post-move makespan.
    SubgraphId best_sg = kInvalidSubgraph;
    PartitionId best_to = kInvalidPartition;
    std::int64_t best_makespan = current;
    for (std::size_t sg = 0; sg < totals.size(); ++sg) {
      if (moved[sg] ||
          report.suggested_subgraph_partition[sg] != straggler ||
          totals[sg].compute_ns <= 0) {
        continue;
      }
      for (PartitionId to = 0; to < table.num_partitions; ++to) {
        if (to == straggler) {
          continue;
        }
        std::int64_t after = 0;
        for (PartitionId p = 0; p < table.num_partitions; ++p) {
          std::int64_t load = loads[p];
          if (p == straggler) load -= totals[sg].compute_ns;
          if (p == to) load += totals[sg].compute_ns;
          after = std::max(after, load);
        }
        if (after < best_makespan) {
          best_makespan = after;
          best_sg = static_cast<SubgraphId>(sg);
          best_to = to;
        }
      }
    }
    if (best_sg == kInvalidSubgraph) {
      break;
    }
    const double gain_pct =
        100.0 * static_cast<double>(current - best_makespan) /
        static_cast<double>(current);
    if (gain_pct < options.min_gain_pct) {
      break;
    }

    AdvisorMove move;
    move.subgraph = best_sg;
    move.from = straggler;
    move.to = best_to;
    move.subgraph_compute_ns = totals[best_sg].compute_ns;
    move.share_of_from =
        loads[straggler] > 0
            ? static_cast<double>(totals[best_sg].compute_ns) /
                  static_cast<double>(loads[straggler])
            : 0.0;
    move.makespan_before_ns = current;
    move.makespan_after_ns = best_makespan;

    std::string finding =
        "subgraph " + std::to_string(best_sg) + " is " +
        fmtPct(100.0 * move.share_of_from) + " of p" +
        std::to_string(straggler) + "'s compute (" +
        fmtMs(move.subgraph_compute_ns) + "); moving it to p" +
        std::to_string(best_to) + " cuts the modelled wave makespan by " +
        fmtPct(gain_pct);
    if (analysis != nullptr && analysis->dominant_straggler >= 0 &&
        static_cast<PartitionId>(analysis->dominant_straggler) ==
            straggler) {
      finding += " — p" + std::to_string(straggler) +
                 " is also the dominant barrier straggler (" +
                 fmtPct(100.0 * analysis->dominant_wait_fraction) +
                 " of blamed wait)";
    }
    report.findings.push_back(std::move(finding));

    loads[straggler] -= totals[best_sg].compute_ns;
    loads[best_to] += totals[best_sg].compute_ns;
    moved[best_sg] = true;
    report.suggested_subgraph_partition[best_sg] = best_to;
    report.moves.push_back(move);
  }
  report.makespan_after_ns = makespan(loads);

  if (report.moves.empty()) {
    report.findings.push_back(
        "partitioning looks balanced: no single-subgraph move improves the "
        "modelled makespan by >= " +
        fmtPct(options.min_gain_pct));
  }

  // Scheduler-blame corroboration: name the partition the schedulers blame
  // most, so a reader can see whether runtime waits agree with the table.
  if (!table.sched_wait_caused_ns.empty()) {
    const auto it = std::max_element(table.sched_wait_caused_ns.begin(),
                                     table.sched_wait_caused_ns.end());
    if (*it > 0) {
      const PartitionId p = static_cast<PartitionId>(
          it - table.sched_wait_caused_ns.begin());
      std::string line = "scheduler blame: p" + std::to_string(p) +
                         " caused " + fmtMs(*it) + " of wait";
      if (p < table.steal_victims.size() && table.steal_victims[p] > 0) {
        line += " and had " + std::to_string(table.steal_victims[p]) +
                " tasks stolen from it";
      }
      report.findings.push_back(std::move(line));
    }
  }
  return report;
}

std::string renderAdvisorReport(const AdvisorReport& report) {
  std::string out = "partition-quality advisor:\n";
  for (const std::string& finding : report.findings) {
    out += "  * " + finding + "\n";
  }
  if (report.hasSuggestions()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  modelled makespan: %.2f ms -> %.2f ms (-%.1f%%) over "
                  "%zu move(s)\n",
                  static_cast<double>(report.makespan_before_ns) / 1e6,
                  static_cast<double>(report.makespan_after_ns) / 1e6,
                  report.gainPct(), report.moves.size());
    out += buf;
  }
  return out;
}

}  // namespace tsg
