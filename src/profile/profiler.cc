#include "profile/profiler.h"

#include <algorithm>
#include <utility>

#include "common/prof_hooks.h"

namespace tsg {

std::atomic<bool> Profiler::armed_{false};

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

void Profiler::arm(const ProfileOptions& options) {
  options_ = options;
  sample_every_ = std::max<std::uint32_t>(1, options.sample_every);
  // The scheduler and storage layers sit below profile/ in the module DAG,
  // so they reach the recorder through the common/prof_hooks table instead
  // of including this header (see tools/layers.txt).
  prof::Hooks hooks;
  hooks.wait_caused = [](std::uint32_t p, std::int64_t ns) {
    Profiler::global().recordWaitCaused(p, ns);
  };
  hooks.steal_victim = [](std::uint32_t p) {
    Profiler::global().recordStealVictim(p);
  };
  hooks.resident_slice = [](std::uint32_t p, std::int32_t t,
                            std::uint64_t bytes) {
    Profiler::global().recordResidentSlice(p, t, bytes);
  };
  prof::install(hooks);
  // tsg:mo(gate flag only; hook sites re-check run_active_ with acquire
  // before touching the grid)
  armed_.store(true, std::memory_order_relaxed);
}

void Profiler::disarm() {
  prof::uninstall();
  // tsg:mo(gate flags; no grid state is published by disarming)
  armed_.store(false, std::memory_order_relaxed);
  run_active_.store(false, std::memory_order_relaxed);  // tsg:mo(gate flag; teardown publishes nothing here)
}

void Profiler::beginRun(const PartitionedGraph& pg, Timestep first_timestep,
                        std::int32_t num_timesteps) {
  if (!enabled()) {
    return;
  }
  pg_ = &pg;
  first_timestep_ = first_timestep;
  num_rows_ = std::max<std::int32_t>(0, num_timesteps) + 1;  // + merge row
  num_subgraphs_ = static_cast<std::uint32_t>(pg.numSubgraphs());
  cells_ = std::vector<Cell>(static_cast<std::size_t>(num_rows_) *
                             num_subgraphs_);
  msgs_in_ = std::vector<std::atomic<std::uint64_t>>(num_subgraphs_);
  bytes_in_ = std::vector<std::atomic<std::uint64_t>>(num_subgraphs_);
  wait_caused_ns_ =
      std::vector<std::atomic<std::int64_t>>(pg.numPartitions());
  steal_victims_ =
      std::vector<std::atomic<std::uint64_t>>(pg.numPartitions());
  shards_.clear();
  const std::size_t capacity = std::max<std::size_t>(8, options_.sketch_capacity);
  for (std::uint32_t p = 0; p < pg.numPartitions(); ++p) {
    shards_.push_back(std::make_unique<SketchShard>(capacity));
  }
  run_active_.store(true, std::memory_order_release);  // tsg:mo(release publishes the grid built above to hook threads)
}

AttributionTable Profiler::take() {
  AttributionTable table;
  if (!run_active_.exchange(false, std::memory_order_acq_rel) ||  // tsg:mo(acq_rel closes the gate and orders hook writes before reads)
      pg_ == nullptr) {
    return table;
  }
  const PartitionedGraph& pg = *pg_;
  table.num_partitions = pg.numPartitions();
  table.first_timestep = first_timestep_;
  table.num_rows = num_rows_;
  table.sample_every = sample_every_;

  table.subgraphs.resize(num_subgraphs_);
  for (SubgraphId sg = 0; sg < num_subgraphs_; ++sg) {
    const Subgraph& s = pg.subgraph(sg);
    SubgraphMeta& m = table.subgraphs[sg];
    m.id = sg;
    m.partition = s.partition;
    m.vertices = s.numVertices();
    m.local_edges = s.num_local_edges;
    m.remote_edges = s.remote_edges.size();
  }

  table.rows.resize(static_cast<std::size_t>(num_rows_));
  for (std::int32_t row = 0; row < num_rows_; ++row) {
    auto& out = table.rows[static_cast<std::size_t>(row)];
    out.resize(num_subgraphs_);
    for (SubgraphId sg = 0; sg < num_subgraphs_; ++sg) {
      const Cell& c =
          cells_[static_cast<std::size_t>(row) * num_subgraphs_ + sg];
      SubgraphCosts& dst = out[sg];
      dst.compute_ns = c.compute_ns.load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
      dst.computes = c.computes.load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
      dst.msgs_out = c.msgs_out.load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
      dst.bytes_out = c.bytes_out.load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
      dst.resident_bytes = c.resident_bytes.load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
    }
  }

  table.msgs_in.resize(num_subgraphs_);
  table.bytes_in.resize(num_subgraphs_);
  for (SubgraphId sg = 0; sg < num_subgraphs_; ++sg) {
    table.msgs_in[sg] = msgs_in_[sg].load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
    table.bytes_in[sg] = bytes_in_[sg].load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
  }
  table.sched_wait_caused_ns.resize(wait_caused_ns_.size());
  table.steal_victims.resize(steal_victims_.size());
  for (std::size_t p = 0; p < wait_caused_ns_.size(); ++p) {
    table.sched_wait_caused_ns[p] =
        wait_caused_ns_[p].load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
    table.steal_victims[p] =
        steal_victims_[p].load(std::memory_order_relaxed);  // tsg:mo(read after take() closed the gate; writers done)
  }

  const std::size_t capacity =
      std::max<std::size_t>(8, options_.sketch_capacity);
  SpaceSavingSketch compute_sketch(capacity);
  SpaceSavingSketch fanout_sketch(capacity);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    compute_sketch.merge(shard->compute);
    fanout_sketch.merge(shard->fanout);
  }
  const auto to_hot = [&pg](const SpaceSavingSketch::Entry& e) {
    HotVertex h;
    h.vertex = e.key;
    h.partition =
        e.key < pg.graphTemplate().numVertices()
            ? pg.partitionOfVertex(static_cast<VertexIndex>(e.key))
            : kInvalidPartition;
    h.weight = e.count;
    h.error = e.error;
    return h;
  };
  for (const auto& e : compute_sketch.topK()) {
    table.hot_compute.push_back(to_hot(e));
  }
  for (const auto& e : fanout_sketch.topK()) {
    table.hot_fanout.push_back(to_hot(e));
  }
  table.sketch_weight_compute = compute_sketch.totalWeight();
  table.sketch_weight_fanout = fanout_sketch.totalWeight();

  pg_ = nullptr;
  cells_.clear();
  msgs_in_.clear();
  bytes_in_.clear();
  wait_caused_ns_.clear();
  steal_victims_.clear();
  shards_.clear();
  return table;
}

// tsg:hot — hook fires after every subgraph compute call.
void Profiler::recordCompute(SubgraphId sg, Timestep t, std::int64_t ns) {
  if (!run_active_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with arm()'s release of the grid)
    return;
  }
  Cell* cell = cellAt(rowOf(t), sg);
  if (cell == nullptr) {
    return;
  }
  cell->compute_ns.fetch_add(ns, std::memory_order_relaxed);  // tsg:mo(cost tally; reconciled when take() closes the gate)
  cell->computes.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(cost tally; reconciled when take() closes the gate)
}

// tsg:hot — hook fires once per message send.
void Profiler::recordSend(SubgraphId src, SubgraphId dst, Timestep t,
                          std::uint64_t bytes) {
  if (!run_active_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with arm()'s release of the grid)
    return;
  }
  if (Cell* cell = cellAt(rowOf(t), src)) {
    cell->msgs_out.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(cost tally; reconciled when take() closes the gate)
    cell->bytes_out.fetch_add(bytes, std::memory_order_relaxed);  // tsg:mo(cost tally; reconciled when take() closes the gate)
  }
  if (dst < msgs_in_.size()) {
    msgs_in_[dst].fetch_add(1, std::memory_order_relaxed);  // tsg:mo(cost tally; reconciled when take() closes the gate)
    bytes_in_[dst].fetch_add(bytes, std::memory_order_relaxed);  // tsg:mo(cost tally; reconciled when take() closes the gate)
  }
}

void Profiler::recordVertexSample(PartitionId p, VertexIndex vertex,
                                  std::uint64_t ns, std::uint64_t fanout) {
  if (!run_active_.load(std::memory_order_acquire) || p >= shards_.size()) {  // tsg:mo(acquire pairs with arm()'s release of the grid)
    return;
  }
  const std::uint64_t scale = sample_every_;
  SketchShard& shard = *shards_[p];
  std::lock_guard lock(shard.mutex);
  shard.compute.offer(vertex, ns * scale);
  if (fanout > 0) {
    shard.fanout.offer(vertex, fanout * scale);
  }
}

void Profiler::recordResidentSlice(PartitionId p, Timestep t,
                                   std::uint64_t bytes) {
  if (!run_active_.load(std::memory_order_acquire) || pg_ == nullptr ||  // tsg:mo(acquire pairs with arm()'s release of the grid)
      p >= pg_->numPartitions()) {
    return;
  }
  const std::int32_t row = rowOf(t);
  if (row < 0) {
    return;
  }
  const Partition& part = pg_->partition(p);
  const std::uint64_t part_vertices = part.numVertices();
  if (part_vertices == 0) {
    return;
  }
  for (const Subgraph& sg : part.subgraphs) {
    Cell* cell = cellAt(row, sg.id);
    if (cell == nullptr) {
      continue;
    }
    const std::uint64_t share =
        bytes * sg.numVertices() / part_vertices;
    // An occupancy level, not a flow: the latest load for this row wins.
    cell->resident_bytes.store(share, std::memory_order_relaxed);  // tsg:mo(occupancy gauge; the latest value wins)
  }
}

void Profiler::recordWaitCaused(PartitionId p, std::int64_t ns) {
  if (!run_active_.load(std::memory_order_acquire) ||  // tsg:mo(acquire pairs with arm()'s release of the grid)
      p >= wait_caused_ns_.size() || ns <= 0) {
    return;
  }
  wait_caused_ns_[p].fetch_add(ns, std::memory_order_relaxed);  // tsg:mo(wait tally; reconciled when take() closes the gate)
}

void Profiler::recordStealVictim(PartitionId p) {
  if (!run_active_.load(std::memory_order_acquire) ||  // tsg:mo(acquire pairs with arm()'s release of the grid)
      p >= steal_victims_.size()) {
    return;
  }
  steal_victims_[p].fetch_add(1, std::memory_order_relaxed);  // tsg:mo(steal tally; reconciled when take() closes the gate)
}

void Profiler::resetRowsFrom(Timestep t) {
  if (!run_active_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with arm()'s release of the grid)
    return;
  }
  const std::int32_t first_row = std::max(0, t - first_timestep_);
  for (std::int32_t row = first_row; row < num_rows_; ++row) {
    for (SubgraphId sg = 0; sg < num_subgraphs_; ++sg) {
      Cell* cell = cellAt(row, sg);
      cell->compute_ns.store(0, std::memory_order_relaxed);  // tsg:mo(rebaseline reset; the engine is between timesteps)
      cell->computes.store(0, std::memory_order_relaxed);  // tsg:mo(rebaseline reset; the engine is between timesteps)
      cell->msgs_out.store(0, std::memory_order_relaxed);  // tsg:mo(rebaseline reset; the engine is between timesteps)
      cell->bytes_out.store(0, std::memory_order_relaxed);  // tsg:mo(rebaseline reset; the engine is between timesteps)
      cell->resident_bytes.store(0, std::memory_order_relaxed);  // tsg:mo(rebaseline reset; the engine is between timesteps)
    }
  }
}

}  // namespace tsg
