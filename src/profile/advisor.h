// Partition-quality advisor — turns an AttributionTable into concrete,
// checkable rebalancing suggestions.
//
// The PR-3 analyzer says "partition 2 straggles"; the attribution table
// says which subgraphs make it heavy. The advisor closes the loop: it
// greedily moves the straggler's heaviest subgraphs to the lightest
// partition while the modelled wave makespan (max per-partition compute)
// improves, and emits findings like
//
//   subgraph 12 is 41% of p2's compute (8.3 ms); moving it to p0 cuts the
//   modelled wave makespan by 17%
//
// cross-referenced against the critical-path analysis (is the compute-heavy
// partition also the barrier-wait straggler?) and the scheduler blame
// series. The suggested assignment is replayable: bench_ablation_advisor
// rebuilds the PartitionedGraph from `suggested_subgraph_partition` and
// reruns the workload to validate the predicted gain.
//
// The makespan model is per-partition *compute* only — deliberately the
// same signal the paper's load-balance discussion uses (subgraph size/
// degree skew), not a full comms model; the ablation bench is the ground
// truth for whether a suggestion holds up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/analysis.h"
#include "metrics/attribution.h"

namespace tsg {

struct AdvisorMove {
  SubgraphId subgraph = kInvalidSubgraph;
  PartitionId from = kInvalidPartition;
  PartitionId to = kInvalidPartition;
  double share_of_from = 0.0;        // subgraph's fraction of from's compute
  std::int64_t subgraph_compute_ns = 0;
  std::int64_t makespan_before_ns = 0;
  std::int64_t makespan_after_ns = 0;
};

struct AdvisorReport {
  std::vector<AdvisorMove> moves;
  std::vector<std::string> findings;  // one human-readable line per insight
  // Subgraph -> partition after applying `moves`; equals the original
  // owners when no move clears the gain threshold.
  std::vector<PartitionId> suggested_subgraph_partition;
  std::int64_t makespan_before_ns = 0;
  std::int64_t makespan_after_ns = 0;

  [[nodiscard]] bool hasSuggestions() const { return !moves.empty(); }
  [[nodiscard]] double gainPct() const {
    return makespan_before_ns <= 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(makespan_before_ns -
                                         makespan_after_ns) /
                     static_cast<double>(makespan_before_ns);
  }
};

struct AdvisorOptions {
  std::int32_t max_moves = 3;
  // A move must improve the modelled makespan by at least this much.
  double min_gain_pct = 2.0;
};

// `analysis` is optional (pass nullptr when no superstep records are at
// hand); when present, findings note whether compute skew and barrier-wait
// blame point at the same partition.
AdvisorReport advisePartitioning(const AttributionTable& table,
                                 const CriticalPathAnalysis* analysis,
                                 const AdvisorOptions& options = {});

// Renders the findings as an indented text block for tsgcli.
std::string renderAdvisorReport(const AdvisorReport& report);

}  // namespace tsg
