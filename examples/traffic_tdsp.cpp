// Traffic routing over a city-scale road network — the paper's motivating
// Smart City scenario (§I).
//
// Generates a synthetic road network, 24 five-minute traffic snapshots with
// randomly varying travel times, stores them as a GoFS dataset (temporal
// packing 10 / subgraph binning 5), then answers: starting from a depot at
// t0, what is the earliest arrival at every intersection, and how does the
// reachable horizon grow per timestep?
//
// Demonstrates: generators → partitioning → GoFS persistence → lazy
// loading → While-mode TDSP → per-timestep progress counters.
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "algorithms/tdsp.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/dataset.h"
#include "partition/partitioner.h"

using namespace tsg;

int main() {
  // 1. A ~10k-intersection road network.
  RoadNetworkOptions topo;
  topo.width = 100;
  topo.height = 100;
  topo.seed = 42;
  auto tmpl_result =
      makeRoadNetwork(topo, AttributeSchema{}, roadEdgeSchema());
  if (!tmpl_result.isOk()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 tmpl_result.status().toString().c_str());
    return 1;
  }
  auto tmpl = std::make_shared<GraphTemplate>(std::move(tmpl_result).value());
  std::printf("road network: %zu intersections, %zu road segments\n",
              tmpl->numVertices(), tmpl->numEdges() / 2);

  // 2. A day's worth of 5-minute traffic snapshots (travel time 0.1-1 min).
  RoadInstanceOptions instances;
  instances.num_timesteps = 24;
  instances.delta = 5;
  instances.min_latency = 0.1;  // mean ~0.55 min: frontier moves ~9
  instances.max_latency = 1.0;  // intersections per 5-minute timestep
  instances.seed = 7;
  auto coll_result = makeRoadInstances(tmpl, instances);
  if (!coll_result.isOk()) {
    std::fprintf(stderr, "instance generation failed\n");
    return 1;
  }
  const auto collection = std::move(coll_result).value();

  // 3. Partition over 4 simulated hosts and persist to GoFS.
  const BfsPartitioner partitioner(3);
  auto pg_result =
      PartitionedGraph::build(tmpl, partitioner.assign(*tmpl, 4), 4);
  if (!pg_result.isOk()) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsg_traffic_example")
          .string();
  GofsOptions gofs;  // packing 10, binning 5
  if (const auto status =
          writeGofsDataset(dir, "city", pg_result.value(), collection, gofs);
      !status.isOk()) {
    std::fprintf(stderr, "GoFS write failed: %s\n",
                 status.toString().c_str());
    return 1;
  }
  auto ds_result = GofsDataset::open(dir);
  if (!ds_result.isOk()) {
    return 1;
  }
  const auto& ds = ds_result.value();
  const auto storage = ds.storageStats();
  std::printf("GoFS dataset: %llu slice files, %.1f MB\n",
              static_cast<unsigned long long>(
                  storage.isOk() ? storage.value().slice_files : 0),
              storage.isOk()
                  ? static_cast<double>(storage.value().slice_bytes) / 1e6
                  : 0.0);

  // 4. Earliest arrival everywhere from the depot (vertex 0) at t0.
  auto provider = ds.makeProvider();
  TdspOptions options;
  options.source = 0;
  options.latency_attr =
      ds.partitionedGraph().graphTemplate().edgeSchema().requireIndex(
          "latency");
  options.while_mode = true;
  const auto run = runTdsp(ds.partitionedGraph(), *provider, options);

  std::uint64_t reached = 0;
  double worst = 0;
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (run.finalized_at[v] >= 0) {
      ++reached;
      worst = std::max(worst, run.tdsp[v]);
    }
  }
  std::printf(
      "TDSP: reached %llu / %zu intersections in %d timesteps; farthest "
      "arrival %.1f min\n",
      static_cast<unsigned long long>(reached), tmpl->numVertices(),
      run.exec.timesteps_executed, worst);

  std::printf("reachable horizon per timestep (new intersections):\n");
  const auto& counter =
      run.exec.stats.counters().at(kTdspFinalizedCounter);
  for (std::size_t t = 0; t < counter.size(); ++t) {
    std::uint64_t newly = 0;
    for (const auto per_part : counter[t]) {
      newly += per_part;
    }
    if (newly > 0) {
      std::printf("  t=%2zu (+%2zu min): %6llu new, e.g. frontier radius "
                  "~%.0f min\n",
                  t, t * 5, static_cast<unsigned long long>(newly),
                  static_cast<double>(t + 1) * 5);
    }
  }

  std::filesystem::remove_all(dir);
  return reached > 0 ? 0 : 1;
}
