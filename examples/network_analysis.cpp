// Whole-network structural analysis + cluster right-sizing.
//
// Combines the topology-level algorithms (weakly connected components,
// subgraph-centric PageRank) with the §IV-E rebalancing planner: analyze a
// network, find its influential vertices, then inspect the run's metering
// and let the planner propose subgraph migrations for the next run.
//
// Demonstrates: WCC, PageRank, run metering, planRebalance.
#include <algorithm>
#include <cstdio>

#include "algorithms/pagerank.h"
#include "algorithms/wcc.h"
#include "core/rebalance.h"
#include "generators/topology.h"
#include "gofs/instance_provider.h"
#include "partition/partitioner.h"

using namespace tsg;

int main() {
  // A social graph plus a few disconnected satellite communities.
  PreferentialAttachmentOptions topo;
  topo.num_vertices = 12000;
  topo.edges_per_vertex = 2;
  topo.seed = 77;
  auto core_result =
      makePreferentialAttachment(topo, AttributeSchema{}, AttributeSchema{});
  if (!core_result.isOk()) {
    return 1;
  }
  // Rebuild with satellites: copy the core edges and add isolated rings.
  GraphTemplateBuilder builder(/*directed=*/false);
  const auto& core = core_result.value();
  for (VertexIndex v = 0; v < core.numVertices(); ++v) {
    builder.addVertex(core.vertexId(v));
  }
  EdgeId next_edge = 0;
  for (EdgeIndex e = 0; e < core.numEdges(); ++e) {
    builder.addEdge(next_edge++, core.vertexId(core.edgeSrc(e)),
                    core.vertexId(core.edgeDst(e)));
  }
  const VertexId satellite_base = 1'000'000;
  for (int ring = 0; ring < 3; ++ring) {
    const VertexId base = satellite_base + static_cast<VertexId>(ring) * 100;
    for (int i = 0; i < 8; ++i) {
      builder.addVertex(base + static_cast<VertexId>(i));
    }
    for (int i = 0; i < 8; ++i) {
      builder.addUndirectedEdge(next_edge++, base + i, base + (i + 1) % 8);
    }
  }
  auto tmpl_result = builder.build();
  if (!tmpl_result.isOk()) {
    return 1;
  }
  auto tmpl = std::make_shared<GraphTemplate>(std::move(tmpl_result).value());

  const LdgPartitioner partitioner(19);
  auto pg_result =
      PartitionedGraph::build(tmpl, partitioner.assign(*tmpl, 4), 4);
  if (!pg_result.isOk()) {
    return 1;
  }
  const auto& pg = pg_result.value();
  TimeSeriesCollection coll(tmpl, 0, 1);
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);

  // 1. Connectivity census.
  const auto wcc = runSubgraphWcc(pg, provider);
  std::printf("network: %zu vertices, %zu components (expected core + 3 "
              "satellite rings)\n",
              tmpl->numVertices(), wcc.num_components);

  // 2. Influence ranking.
  PageRankOptions pr_options;
  pr_options.iterations = 25;
  const auto pr = runSubgraphPageRank(pg, provider, pr_options);
  std::vector<VertexIndex> order(tmpl->numVertices());
  for (VertexIndex v = 0; v < order.size(); ++v) {
    order[v] = v;
  }
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexIndex a, VertexIndex b) {
                      return pr.ranks[a] > pr.ranks[b];
                    });
  std::printf("top-5 PageRank:");
  for (int i = 0; i < 5; ++i) {
    std::printf(" user%llu(%.5f)",
                static_cast<unsigned long long>(tmpl->vertexId(order[i])),
                pr.ranks[order[i]]);
  }
  std::printf("\n");

  // 3. Right-size the placement from the observed metering (§IV-E).
  const auto plan_result = planRebalance(pg, pr.exec.stats);
  if (!plan_result.isOk()) {
    return 1;
  }
  const auto& plan = plan_result.value();
  std::printf(
      "rebalance plan: %zu subgraph moves; compute imbalance %.2f -> %.2f; "
      "edge cut %.2f%% -> %.2f%%\n",
      plan.moves.size(), plan.imbalance_before, plan.imbalance_after,
      plan.cut_fraction_before * 100.0, plan.cut_fraction_after * 100.0);
  for (const auto& move : plan.moves) {
    std::printf("  move subgraph %u: partition %u -> %u (load %.1f%%)\n",
                move.subgraph, move.from, move.to,
                move.load * 100.0 /
                    std::max(1.0, plan.imbalance_before));
  }
  return wcc.num_components == 4 ? 0 : 1;
}
