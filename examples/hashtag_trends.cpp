// Hashtag trend analytics — the paper's §III-A eventually dependent use
// case: per-timestep occurrence counts of a hashtag across the network,
// merged into a global series, plus the rate of change ("is it trending?").
//
// Demonstrates: eventually dependent pattern (per-instance Compute +
// Merge BSP with a master subgraph), temporal concurrency (the optimization
// the paper points out GoFFish left unexploited), and the independent
// pattern via per-timestep Top-N.
#include <algorithm>
#include <cstdio>

#include "algorithms/hashtag.h"
#include "algorithms/topn.h"
#include "common/stopwatch.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/instance_provider.h"
#include "partition/partitioner.h"

using namespace tsg;

int main() {
  // A 15k-user social graph with two competing hashtags.
  PreferentialAttachmentOptions topo;
  topo.num_vertices = 15000;
  topo.edges_per_vertex = 2;
  topo.seed = 31;
  auto tmpl_result =
      makePreferentialAttachment(topo, tweetVertexSchema(), AttributeSchema{});
  if (!tmpl_result.isOk()) {
    return 1;
  }
  auto tmpl = std::make_shared<GraphTemplate>(std::move(tmpl_result).value());

  // #breaking spreads aggressively, #slowburn trickles.
  SirTweetOptions fast;
  fast.num_timesteps = 25;
  fast.meme = "#breaking";
  fast.hit_probability = 0.15;
  fast.num_seed_vertices = 4;
  fast.seed = 41;
  auto coll_result = makeSirTweetInstances(tmpl, fast);
  if (!coll_result.isOk()) {
    return 1;
  }
  auto collection = std::move(coll_result).value();

  // Overlay the second tag by merging a second SIR run into the tweets.
  SirTweetOptions slow = fast;
  slow.meme = "#slowburn";
  slow.hit_probability = 0.03;
  slow.seed = 43;
  auto slow_result = makeSirTweetInstances(tmpl, slow);
  if (!slow_result.isOk()) {
    return 1;
  }
  const std::size_t tweets_attr = tmpl->vertexSchema().requireIndex("tweets");
  for (Timestep t = 0; t < 25; ++t) {
    auto& dst = collection.mutableInstance(t).vertexCol(tweets_attr)
                    .asStringList();
    const auto& src = slow_result.value().instance(t).vertexCol(tweets_attr)
                          .asStringList();
    for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
      dst[v].insert(dst[v].end(), src[v].begin(), src[v].end());
    }
  }

  const BfsPartitioner partitioner(9);
  auto pg_result =
      PartitionedGraph::build(tmpl, partitioner.assign(*tmpl, 3), 3);
  if (!pg_result.isOk()) {
    return 1;
  }
  const auto& pg = pg_result.value();
  DirectInstanceProvider provider(pg, collection);

  // Aggregate both tags; time serial vs temporally concurrent execution.
  std::printf("tag        | peak count | peak t | trending span (rate>0)\n");
  for (const std::string tag : {"#breaking", "#slowburn"}) {
    HashtagOptions options;
    options.tag = tag;
    options.tweets_attr = tweets_attr;
    options.temporal_mode = TemporalMode::kConcurrent;
    const auto run = runHashtagAggregation(pg, provider, options);

    const auto peak_it =
        std::max_element(run.counts.begin(), run.counts.end());
    std::size_t rising = 0;
    for (const auto rate : run.rate_of_change) {
      rising += rate > 0 ? 1 : 0;
    }
    std::printf("%-10s | %10llu | %6td | %zu of %zu timesteps\n",
                tag.c_str(),
                static_cast<unsigned long long>(*peak_it),
                peak_it - run.counts.begin(), rising, run.counts.size());
  }

  // Independent pattern: who dominated each timestep?
  TopNOptions topn;
  topn.tweets_attr = tweets_attr;
  topn.n = 1;
  const auto top = runTopActiveVertices(pg, provider, topn);
  std::printf("\nmost active user per timestep:");
  VertexIndex last = kInvalidVertexIndex;
  for (std::size_t t = 0; t < top.top.size(); ++t) {
    if (!top.top[t].empty() && top.top[t][0] != last) {
      last = top.top[t][0];
      std::printf(" t%zu:user%llu", t,
                  static_cast<unsigned long long>(tmpl->vertexId(last)));
    }
  }
  std::printf("\n");
  return 0;
}
