// Quickstart: the paper's §III-C worked example, end to end, in ~100 lines.
//
// A seven-vertex road network whose edge latencies change every δ = 5
// minutes. Plain SSSP on the first snapshot estimates S→C at 7 minutes but
// the route actually takes 35; the time-dependent shortest path (TDSP)
// leaves S→A immediately, waits out one timestep at A, and crosses A→C when
// it gets fast — arriving at minute 14.
//
// Demonstrates: building a template + instances in memory, partitioning,
// and running a sequentially dependent TI-BSP algorithm.
#include <cstdio>

#include "algorithms/reference.h"
#include "algorithms/tdsp.h"
#include "gofs/instance_provider.h"
#include "graph/collection.h"
#include "partition/partitioner.h"

using namespace tsg;

namespace {

constexpr VertexIndex S = 0, A = 1, B = 2, C = 3, D = 4, E = 5, F = 6;
constexpr const char* kNames = "SABCDEF";

// Sets the latency of every (src → dst) directed edge in the instance.
void setLatency(const GraphTemplate& tmpl, GraphInstance& inst,
                VertexIndex src, VertexIndex dst, double minutes) {
  for (const auto& oe : tmpl.outEdges(src)) {
    if (oe.dst == dst) {
      inst.edgeCol(0).asDouble()[oe.edge] = minutes;
    }
  }
}

}  // namespace

int main() {
  // 1. The template: time-invariant topology + attribute schema.
  GraphTemplateBuilder builder(/*directed=*/true);
  builder.edgeSchema().add("latency", AttrType::kDouble);
  for (VertexId id = 0; id < 7; ++id) {
    builder.addVertex(id);
  }
  builder.addEdge(0, S, A);
  builder.addEdge(1, S, E);
  builder.addEdge(2, E, C);
  builder.addEdge(3, A, C);
  builder.addEdge(4, C, B);
  builder.addEdge(5, C, D);
  builder.addEdge(6, E, F);
  auto built = builder.build();
  if (!built.isOk()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().toString().c_str());
    return 1;
  }
  const auto tmpl = std::make_shared<GraphTemplate>(std::move(built).value());

  // 2. The instances: three 5-minute snapshots of traffic.
  TimeSeriesCollection traffic(tmpl, /*t0=*/0, /*delta=*/5);
  struct Snapshot {
    double sa, se, ec, ac;
  };
  const Snapshot snapshots[] = {{5, 2, 5, 30},    // g0
                                {15, 10, 30, 15},  // g1: E→C jams
                                {15, 10, 30, 4}};  // g2: A→C clears
  for (const auto& snap : snapshots) {
    auto& inst = traffic.appendInstance();
    for (auto& latency : inst.edgeCol(0).asDouble()) {
      latency = 200;  // far-away roads
    }
    setLatency(*tmpl, inst, S, A, snap.sa);
    setLatency(*tmpl, inst, S, E, snap.se);
    setLatency(*tmpl, inst, E, C, snap.ec);
    setLatency(*tmpl, inst, A, C, snap.ac);
  }

  // 3. Partition across two simulated hosts and run TDSP.
  const BfsPartitioner partitioner;
  const auto assignment = partitioner.assign(*tmpl, 2);
  auto pg = PartitionedGraph::build(tmpl, assignment, 2);
  if (!pg.isOk()) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }
  DirectInstanceProvider provider(pg.value(), traffic);

  TdspOptions options;
  options.source = S;
  options.latency_attr = 0;
  const auto run = runTdsp(pg.value(), provider, options);

  // 4. Compare with the naive single-snapshot SSSP.
  const auto naive = reference::dijkstra(
      *tmpl, traffic.instance(0).edgeCol(0).asDouble(), S);

  std::printf("vertex | naive SSSP estimate (g0) | TDSP earliest arrival\n");
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    std::printf("   %c   | %24.0f | %9.0f  (finalized at timestep %d)\n",
                kNames[v], naive[v], run.tdsp[v], run.finalized_at[v]);
  }
  std::printf(
      "\nnaive route S->E->C looked like %.0f min but TDSP arrives at "
      "minute %.0f\nby leaving S->A at once, idling at A, and crossing "
      "A->C when it clears.\n",
      naive[C], run.tdsp[C]);
  return run.tdsp[C] == 14.0 ? 0 : 1;
}
