// Meme outbreak analysis on a social network — the paper's §III-B use case
// ("rate of spread of a meme over time, when a user first receives it, and
// the inflection point ... used to place online ads and manage epidemics").
//
// Generates a power-law social graph, propagates a meme with the SIR model,
// then runs the sequentially dependent Meme Tracking algorithm and reports
// the spread curve, its inflection point, and per-partition activity.
//
// Demonstrates: SIR tweet generation, Meme Tracking (temporal BFS over
// space and time), per-timestep counters, Top-N spreaders.
#include <algorithm>
#include <cstdio>

#include "algorithms/meme.h"
#include "algorithms/topn.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/instance_provider.h"
#include "partition/partitioner.h"

using namespace tsg;

int main() {
  // 1. A 20k-user social network (power-law degree distribution).
  PreferentialAttachmentOptions topo;
  topo.num_vertices = 20000;
  topo.edges_per_vertex = 2;
  topo.seed = 11;
  auto tmpl_result =
      makePreferentialAttachment(topo, tweetVertexSchema(), AttributeSchema{});
  if (!tmpl_result.isOk()) {
    std::fprintf(stderr, "generator failed\n");
    return 1;
  }
  auto tmpl = std::make_shared<GraphTemplate>(std::move(tmpl_result).value());

  // 2. 30 timesteps of tweets: a meme seeded at 5 users spreads with 8%
  // hit probability per contact per timestep.
  SirTweetOptions sir;
  sir.num_timesteps = 30;
  sir.meme = "#cats";
  sir.hit_probability = 0.08;
  sir.num_seed_vertices = 5;
  sir.infectious_timesteps = 3;
  sir.seed = 23;
  auto coll_result = makeSirTweetInstances(tmpl, sir);
  if (!coll_result.isOk()) {
    std::fprintf(stderr, "SIR generation failed\n");
    return 1;
  }
  const auto collection = std::move(coll_result).value();

  // 3. Partition over 3 hosts, run Meme Tracking.
  const BfsPartitioner partitioner(5);
  auto pg_result =
      PartitionedGraph::build(tmpl, partitioner.assign(*tmpl, 3), 3);
  if (!pg_result.isOk()) {
    return 1;
  }
  const auto& pg = pg_result.value();
  DirectInstanceProvider provider(pg, collection);

  MemeOptions options;
  options.meme = sir.meme;
  options.tweets_attr = tmpl->vertexSchema().requireIndex("tweets");
  const auto run = runMemeTracking(pg, provider, options);

  // 4. The spread curve and its inflection point.
  const auto& counter = run.exec.stats.counters().at(kMemeColoredCounter);
  std::printf("meme %s spread curve (new users reached per timestep):\n",
              sir.meme.c_str());
  std::uint64_t cumulative = 0;
  std::uint64_t peak_rate = 0;
  std::size_t peak_t = 0;
  for (std::size_t t = 0; t < counter.size(); ++t) {
    std::uint64_t newly = 0;
    for (const auto per_part : counter[t]) {
      newly += per_part;
    }
    cumulative += newly;
    if (newly > peak_rate) {
      peak_rate = newly;
      peak_t = t;
    }
    std::printf("  t=%2zu: +%5llu  (cumulative %llu)", t,
                static_cast<unsigned long long>(newly),
                static_cast<unsigned long long>(cumulative));
    // A crude terminal sparkline.
    const int bars = static_cast<int>(std::min<std::uint64_t>(newly / 8, 60));
    for (int b = 0; b < bars; ++b) {
      std::fputc('#', stdout);
    }
    std::fputc('\n', stdout);
  }
  std::printf(
      "\ninflection point: timestep %zu (+%llu users) — ad placement after "
      "this buys less reach\n",
      peak_t, static_cast<unsigned long long>(peak_rate));

  // 5. Key individuals: the most active vertices while the meme peaked.
  TopNOptions topn;
  topn.tweets_attr = options.tweets_attr;
  topn.n = 5;
  topn.first_timestep = static_cast<Timestep>(peak_t);
  topn.num_timesteps = 1;
  topn.temporal_mode = TemporalMode::kSerial;
  const auto top = runTopActiveVertices(pg, provider, topn);
  std::printf("top spreader candidates at the peak:");
  for (const auto v : top.top.at(0)) {
    std::printf(" user%llu",
                static_cast<unsigned long long>(tmpl->vertexId(v)));
  }
  std::printf("\n");
  return cumulative > sir.num_seed_vertices ? 0 : 1;
}
